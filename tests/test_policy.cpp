#include "policy/policy.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/arena.hpp"

namespace tv::policy {
namespace {

// A synthetic packet sequence: per "GOP", 6 I-frame packets then 10
// P-frame packets.
util::Arena& test_arena() {
  static util::Arena arena;  // lives for the whole test binary.
  return arena;
}

std::vector<net::VideoPacket> synthetic_packets(int gops = 10) {
  std::vector<net::VideoPacket> packets;
  std::uint16_t seq = 0;
  for (int g = 0; g < gops; ++g) {
    for (int k = 0; k < 6; ++k) {
      net::VideoPacket p;
      p.sequence = seq++;
      p.frame_index = g * 11;
      p.is_i_frame = true;
      p.allocate_payload(test_arena(), 1000, 0);
      packets.push_back(std::move(p));
    }
    for (int k = 0; k < 10; ++k) {
      net::VideoPacket p;
      p.sequence = seq++;
      p.frame_index = g * 11 + 1 + k;
      p.is_i_frame = false;
      p.allocate_payload(test_arena(), 300, 0);
      packets.push_back(std::move(p));
    }
  }
  return packets;
}

long count_selected(const std::vector<bool>& sel,
                    const std::vector<net::VideoPacket>& packets,
                    bool i_frames) {
  long n = 0;
  for (std::size_t i = 0; i < sel.size(); ++i) {
    if (sel[i] && packets[i].is_i_frame == i_frames) ++n;
  }
  return n;
}

TEST(Policy, NoneSelectsNothing) {
  const auto packets = synthetic_packets();
  const EncryptionPolicy p{Mode::kNone, crypto::Algorithm::kAes128, 0.0};
  const auto sel = p.select(packets);
  EXPECT_EQ(count_selected(sel, packets, true), 0);
  EXPECT_EQ(count_selected(sel, packets, false), 0);
  EXPECT_DOUBLE_EQ(p.i_packet_fraction(), 0.0);
  EXPECT_DOUBLE_EQ(p.p_packet_fraction(), 0.0);
}

TEST(Policy, AllSelectsEverything) {
  const auto packets = synthetic_packets();
  const EncryptionPolicy p{Mode::kAll, crypto::Algorithm::kAes128, 0.0};
  const auto sel = p.select(packets);
  EXPECT_EQ(count_selected(sel, packets, true), 60);
  EXPECT_EQ(count_selected(sel, packets, false), 100);
}

TEST(Policy, IFramesSelectsExactlyIPackets) {
  const auto packets = synthetic_packets();
  const EncryptionPolicy p{Mode::kIFrames, crypto::Algorithm::kAes256, 0.0};
  const auto sel = p.select(packets);
  EXPECT_EQ(count_selected(sel, packets, true), 60);
  EXPECT_EQ(count_selected(sel, packets, false), 0);
  EXPECT_DOUBLE_EQ(p.i_packet_fraction(), 1.0);
}

TEST(Policy, PFramesSelectsExactlyPPackets) {
  const auto packets = synthetic_packets();
  const EncryptionPolicy p{Mode::kPFrames, crypto::Algorithm::kAes256, 0.0};
  const auto sel = p.select(packets);
  EXPECT_EQ(count_selected(sel, packets, true), 0);
  EXPECT_EQ(count_selected(sel, packets, false), 100);
  EXPECT_DOUBLE_EQ(p.p_packet_fraction(), 1.0);
}

class FractionPolicy : public ::testing::TestWithParam<double> {};

TEST_P(FractionPolicy, IPlusFractionPSelectsExactShare) {
  const double fraction = GetParam();
  const auto packets = synthetic_packets();
  const EncryptionPolicy p{Mode::kIPlusFractionP, crypto::Algorithm::kAes256,
                           fraction};
  const auto sel = p.select(packets);
  EXPECT_EQ(count_selected(sel, packets, true), 60);  // all I packets.
  // Bresenham stride selects floor/ceil of the exact share.
  const double expected = 100.0 * fraction;
  EXPECT_NEAR(static_cast<double>(count_selected(sel, packets, false)),
              expected, 1.0);
  EXPECT_DOUBLE_EQ(p.p_packet_fraction(), fraction);
  EXPECT_DOUBLE_EQ(p.i_packet_fraction(), 1.0);
}

INSTANTIATE_TEST_SUITE_P(Fractions, FractionPolicy,
                         ::testing::Values(0.0, 0.1, 0.15, 0.2, 0.25, 0.3,
                                           0.5, 1.0));

TEST(Policy, FractionSelectionIsEvenlySpread) {
  const auto packets = synthetic_packets();
  const EncryptionPolicy p{Mode::kIPlusFractionP, crypto::Algorithm::kAes256,
                           0.2};
  const auto sel = p.select(packets);
  // No window of 10 consecutive P packets may contain more than 4
  // selections (a clumped selector would leak long clear runs).
  int p_seen = 0;
  int window[10] = {};
  int in_window = 0;
  for (std::size_t i = 0; i < packets.size(); ++i) {
    if (packets[i].is_i_frame) continue;
    in_window -= window[p_seen % 10];
    window[p_seen % 10] = sel[i] ? 1 : 0;
    in_window += window[p_seen % 10];
    ++p_seen;
    if (p_seen >= 10) {
      EXPECT_LE(in_window, 4);
    }
  }
}

TEST(Policy, FractionIEncryptsOnlyPartOfIFrames) {
  const auto packets = synthetic_packets();
  const EncryptionPolicy p{Mode::kFractionI, crypto::Algorithm::kAes256, 0.5};
  const auto sel = p.select(packets);
  EXPECT_EQ(count_selected(sel, packets, true), 30);
  EXPECT_EQ(count_selected(sel, packets, false), 0);
  EXPECT_DOUBLE_EQ(p.i_packet_fraction(), 0.5);
}

TEST(Policy, SelectionIsDeterministic) {
  const auto packets = synthetic_packets();
  const EncryptionPolicy p{Mode::kIPlusFractionP, crypto::Algorithm::kAes128,
                           0.25};
  EXPECT_EQ(p.select(packets), p.select(packets));
}

TEST(Policy, LabelsAreHumanReadable) {
  EXPECT_EQ((EncryptionPolicy{Mode::kNone, crypto::Algorithm::kAes128, 0.0})
                .label(),
            "none");
  EXPECT_EQ((EncryptionPolicy{Mode::kIFrames, crypto::Algorithm::kAes256,
                              0.0})
                .label(),
            "I (AES256)");
  EXPECT_EQ((EncryptionPolicy{Mode::kIPlusFractionP,
                              crypto::Algorithm::kTripleDes, 0.2})
                .label(),
            "I+20%P (3DES)");
}

TEST(Policy, HeadlineOrderMatchesPaperPlots) {
  const auto ladder = headline_policies(crypto::Algorithm::kAes256);
  ASSERT_EQ(ladder.size(), 4u);
  EXPECT_EQ(ladder[0].mode, Mode::kNone);
  EXPECT_EQ(ladder[1].mode, Mode::kPFrames);
  EXPECT_EQ(ladder[2].mode, Mode::kIFrames);
  EXPECT_EQ(ladder[3].mode, Mode::kAll);
}

TEST(PolicySpec, RoundTripsThroughParser) {
  const std::vector<EncryptionPolicy> shapes = {
      {Mode::kNone, crypto::Algorithm::kAes256, 0.0},
      {Mode::kIFrames, crypto::Algorithm::kAes128, 0.0},
      {Mode::kPFrames, crypto::Algorithm::kAes256, 0.0},
      {Mode::kAll, crypto::Algorithm::kTripleDes, 0.0},
      {Mode::kIPlusFractionP, crypto::Algorithm::kAes256, 0.2},
      {Mode::kIPlusFractionP, crypto::Algorithm::kAes256, 0.125},
      {Mode::kFractionI, crypto::Algorithm::kAes256, 0.5},
  };
  for (const auto& p : shapes) {
    const auto back = policy_from_string(p.spec(), p.algorithm);
    EXPECT_EQ(back.mode, p.mode) << p.spec();
    EXPECT_EQ(back.algorithm, p.algorithm) << p.spec();
    EXPECT_DOUBLE_EQ(back.fraction, p.fraction) << p.spec();
  }
  EXPECT_EQ((EncryptionPolicy{Mode::kIPlusFractionP,
                              crypto::Algorithm::kAes256, 0.2})
                .spec(),
            "I+20P");
  EXPECT_EQ((EncryptionPolicy{Mode::kFractionI, crypto::Algorithm::kAes256,
                              0.5})
                .spec(),
            "50I");
}

TEST(PolicySpec, ParserRejectsMalformedSpecs) {
  for (const char* bad : {"", "Q", "I+P", "I+abcP", "I+120P", "-5I",
                          "101I", "20", "allx"}) {
    EXPECT_THROW((void)policy_from_string(bad, crypto::Algorithm::kAes256),
                 std::invalid_argument)
        << bad;
  }
}

TEST(Policy, ValidatesFraction) {
  EncryptionPolicy p{Mode::kIPlusFractionP, crypto::Algorithm::kAes128, 1.4};
  EXPECT_THROW(p.validate(), std::invalid_argument);
  const auto packets = synthetic_packets();
  EXPECT_THROW((void)p.select(packets), std::invalid_argument);
}

TEST(ShapingSpec, RoundTripsThroughSpecAndParse) {
  ShapingPolicy none;
  EXPECT_FALSE(none.enabled());
  EXPECT_EQ(none.spec(), "none");

  ShapingPolicy everything;
  everything.pad_bucket_bytes = 256;
  everything.hide_markers = true;
  everything.jitter_stddev_s = 2e-3;
  EXPECT_TRUE(everything.enabled());
  EXPECT_EQ(everything.spec(), "pad256+hidemark+jit2ms");

  for (const char* spec :
       {"none", "pad64", "hidemark", "jit2ms", "pad256+hidemark",
        "pad16+jit0.5ms", "pad256+hidemark+jit2ms"}) {
    const ShapingPolicy back = shaping_from_string(spec);
    EXPECT_EQ(back.spec(), spec) << spec;
  }
}

TEST(ShapingSpec, ParserRejectsMalformedSpecs) {
  for (const char* bad :
       {"", "pad", "pad1", "pad999", "jitms", "jit-1ms", "jit2",
        "hidemark+pad64", "pad64+pad64", "frob"}) {
    EXPECT_THROW((void)shaping_from_string(bad), std::invalid_argument)
        << bad;
  }
}

TEST(Shaping, ValidatesKnobRanges) {
  ShapingPolicy bad_bucket;
  bad_bucket.pad_bucket_bytes = 1;  // below the 2-byte floor.
  EXPECT_THROW(bad_bucket.validate(), std::invalid_argument);
  bad_bucket.pad_bucket_bytes = 512;  // beyond the 1-byte pad count.
  EXPECT_THROW(bad_bucket.validate(), std::invalid_argument);

  ShapingPolicy bad_jitter;
  bad_jitter.jitter_stddev_s = 2.0;  // a 2 s stddev is a config mistake.
  EXPECT_THROW(bad_jitter.validate(), std::invalid_argument);
}

}  // namespace
}  // namespace tv::policy
