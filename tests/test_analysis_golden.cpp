// Byte-stability golden for the pcap analysis path.
//
// The fixture tests/data/analysis_golden.pcap is the eavesdropper's
// capture of one deterministic (replay-mode) live loopback run with
// shaping enabled; analysis_golden.jsonl pins, byte for byte, the full
// leakage record `thriftyvid analyze` produces for it — the whole
// net::pcap -> extract_rtp -> features -> inference -> leakage chain at
// %.17g.  The chain is pure IEEE arithmetic on the capture bytes, so the
// output must be identical across Release, ASan and TSan builds and any
// --threads value.
//
// Only the .jsonl is tracked (.gitignore excludes *.pcap); the capture
// is itself a deterministic function of the coordinates below, so on a
// fresh checkout the test first rebuilds it with the live testbed and
// the tracked .jsonl still pins the loopback + analysis chain end to
// end.  After an intentional behaviour change, regenerate with
//
//     TV_UPDATE_GOLDEN=1 ./build/tests/tv_analysis_tests
//         --gtest_filter='AnalysisGolden.*'   (one command line)
//
// and review the fixture diff.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "analysis/sweep.hpp"
#include "core/experiment.hpp"
#include "live/loopback.hpp"
#include "net/pcap.hpp"

#ifndef TV_TEST_DATA_DIR
#error "TV_TEST_DATA_DIR must point at tests/data"
#endif

namespace tv::analysis {
namespace {

/// The workload/policy/shaping coordinates shared by the loopback run
/// that writes the fixture capture and the analysis that scores it.
struct GoldenCoordinates {
  video::MotionLevel motion = video::MotionLevel::kLow;
  int gop_size = 16;
  int frames = 48;
  std::uint64_t seed = 1;
  policy::EncryptionPolicy policy =
      policy::policy_from_string("I", crypto::Algorithm::kAes128);
  policy::ShapingPolicy shaping = policy::shaping_from_string("pad64+jit2ms");
};

LeakageSpec spec_of(const GoldenCoordinates& g) {
  LeakageSpec spec;
  spec.motion = g.motion;
  spec.gop_size = g.gop_size;
  spec.frames = g.frames;
  spec.seed = g.seed;
  spec.pipeline.algorithm = g.policy.algorithm;
  spec.policies = {g.policy};
  spec.shapings = {g.shaping};
  return spec;
}

std::string read_file(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  if (!in) return {};
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(AnalysisGolden, PcapAnalysisMatchesFixture) {
  const std::string data_dir{TV_TEST_DATA_DIR};
  const std::string pcap_path = data_dir + "/analysis_golden.pcap";
  const std::string golden_path = data_dir + "/analysis_golden.jsonl";
  const GoldenCoordinates g;

  const bool update = std::getenv("TV_UPDATE_GOLDEN") != nullptr;
  if (update || read_file(pcap_path).empty()) {
    // (Re)build the capture with the live testbed: the replay-mode
    // loopback writes exactly what its eavesdropper tap heard, and is
    // deterministic in the coordinates, so the untracked pcap fixture
    // reconstructs bit-for-bit on a fresh checkout.
    live::LoopbackConfig config;
    config.motion = g.motion;
    config.gop_size = g.gop_size;
    config.frames = g.frames;
    config.policy = g.policy;
    config.shaping = g.shaping;
    config.seed = g.seed;
    config.pcap_path = pcap_path;
    const live::LoopbackReport report = live::run_loopback(config);
    ASSERT_GT(report.tap.captured, 0u);
  }

  const std::string pcap_bytes = read_file(pcap_path);
  ASSERT_FALSE(pcap_bytes.empty())
      << "missing fixture " << pcap_path
      << "; regenerate with TV_UPDATE_GOLDEN=1";

  const net::PcapFile capture = net::read_pcap_file(pcap_path);
  const std::vector<net::WireRtpPacket> wire = net::extract_rtp(capture);
  ASSERT_FALSE(wire.empty());

  const LeakageSpec spec = spec_of(g);
  spec.validate();
  LeakageCell cell;
  cell.policy = g.policy;
  cell.shaping = g.shaping;
  cell.seed = g.seed;  // root seed: matches the loopback run's.
  const core::Workload workload = core::build_workload(
      g.motion, g.gop_size, g.frames, g.seed, spec.pipeline.fps);

  std::ostringstream out;
  LeakageJsonlSink sink{out};
  sink.cell(run_leakage_cell(spec, cell, workload, &wire));
  const std::string actual = out.str();
  ASSERT_FALSE(actual.empty());

  if (update) {
    std::ofstream golden{golden_path, std::ios::binary};
    ASSERT_TRUE(golden) << "cannot write " << golden_path;
    golden << actual;
    GTEST_SKIP() << "fixtures regenerated under " << data_dir;
  }

  const std::string expected = read_file(golden_path);
  ASSERT_FALSE(expected.empty())
      << "missing fixture " << golden_path
      << "; regenerate with TV_UPDATE_GOLDEN=1";
  EXPECT_EQ(actual, expected)
      << "pcap analysis diverged from " << golden_path
      << "\nIf the change is intentional, regenerate the fixtures with "
         "TV_UPDATE_GOLDEN=1 and review the diff.";
}

}  // namespace
}  // namespace tv::analysis
