// Integration tests: the full Fig. 3 pipeline plus the analytic predictors,
// checking the paper's headline orderings end to end on small clips.
#include "core/experiment.hpp"

#include <gtest/gtest.h>

#include "core/advisor.hpp"

namespace tv::core {
namespace {

const Workload& slow_workload() {
  static const Workload w =
      build_workload(video::MotionLevel::kLow, 20, 60, 2013);
  return w;
}

const Workload& fast_workload() {
  static const Workload w =
      build_workload(video::MotionLevel::kHigh, 20, 60, 2013);
  return w;
}

ExperimentSpec spec_for(const Workload& w, policy::Mode mode,
                        double fraction = 0.0) {
  ExperimentSpec spec;
  spec.policy = {mode, crypto::Algorithm::kAes256, fraction};
  spec.pipeline.device = samsung_galaxy_s2();
  spec.repetitions = 2;
  spec.seed = 99;
  spec.sensitivity_fraction = default_sensitivity(w.motion);
  return spec;
}

TEST(Workload, HasPaperLikeStreamStructure) {
  const auto& w = slow_workload();
  EXPECT_EQ(w.stream.frames.size(), 60u);
  EXPECT_GT(w.stream.mean_i_bytes(), 5.0 * w.stream.mean_p_bytes());
  EXPECT_GT(w.base_mse, 0.0);
  EXPECT_GT(w.null_mse, 50.0 * w.base_mse);  // gray is far from content.
  EXPECT_GT(w.inter(10.0), 0.0);
  // Fast motion content diverges from its past much faster.
  EXPECT_GT(fast_workload().inter(5.0), 5.0 * w.inter(5.0));
}

TEST(Experiment, ReceiverAlwaysBeatsEavesdropper) {
  for (const auto* w : {&slow_workload(), &fast_workload()}) {
    for (auto mode : {policy::Mode::kIFrames, policy::Mode::kAll}) {
      const auto r = run_experiment(spec_for(*w, mode), *w);
      EXPECT_GT(r.receiver_psnr_db.mean(),
                r.eavesdropper_psnr_db.mean() + 5.0)
          << r.label;
      EXPECT_GE(r.receiver_mos.mean(), r.eavesdropper_mos.mean());
    }
  }
}

TEST(Experiment, EncryptionNeverHelpsTheEavesdropper) {
  const auto& w = slow_workload();
  const auto none = run_experiment(spec_for(w, policy::Mode::kNone), w);
  const auto all = run_experiment(spec_for(w, policy::Mode::kAll), w);
  EXPECT_GT(none.eavesdropper_psnr_db.mean(),
            all.eavesdropper_psnr_db.mean() + 10.0);
  EXPECT_GT(none.eavesdropper_mos.mean(), all.eavesdropper_mos.mean());
}

TEST(Experiment, SlowMotionIFramesDominateConfidentiality) {
  // Paper key result: for slow motion, I-only is nearly as protective as
  // encrypting everything, and much more protective than P-only.
  const auto& w = slow_workload();
  const auto i_only = run_experiment(spec_for(w, policy::Mode::kIFrames), w);
  const auto p_only = run_experiment(spec_for(w, policy::Mode::kPFrames), w);
  const auto all = run_experiment(spec_for(w, policy::Mode::kAll), w);
  EXPECT_LT(i_only.eavesdropper_psnr_db.mean(),
            p_only.eavesdropper_psnr_db.mean() - 5.0);
  EXPECT_NEAR(i_only.eavesdropper_psnr_db.mean(),
              all.eavesdropper_psnr_db.mean(), 2.0);
}

TEST(Experiment, FastMotionPFramesMatterMore) {
  // Paper key result: for fast motion the P-frames carry enough content
  // that encrypting only them distorts more than encrypting only I-frames.
  const auto& w = fast_workload();
  const auto i_only = run_experiment(spec_for(w, policy::Mode::kIFrames), w);
  const auto p_only = run_experiment(spec_for(w, policy::Mode::kPFrames), w);
  EXPECT_LT(p_only.eavesdropper_psnr_db.mean(),
            i_only.eavesdropper_psnr_db.mean());
}

TEST(Experiment, FractionOfPTightensProtectionAtSmallDelayCost) {
  const auto& w = fast_workload();
  const auto i_only = run_experiment(spec_for(w, policy::Mode::kIFrames), w);
  const auto i_p20 =
      run_experiment(spec_for(w, policy::Mode::kIPlusFractionP, 0.20), w);
  EXPECT_LT(i_p20.eavesdropper_psnr_db.mean(),
            i_only.eavesdropper_psnr_db.mean());
  // Table 2: the extra delay is a few milliseconds, not a regime change.
  EXPECT_LT(i_p20.delay_ms.mean(), i_only.delay_ms.mean() + 15.0);
}

TEST(Experiment, DelayOrderingMatchesPaper) {
  const auto& w = fast_workload();
  auto quick = [&](policy::Mode mode) {
    auto s = spec_for(w, mode);
    s.evaluate_quality = false;
    s.repetitions = 6;
    return run_experiment(s, w).delay_ms.mean();
  };
  const double none = quick(policy::Mode::kNone);
  const double i_only = quick(policy::Mode::kIFrames);
  const double p_only = quick(policy::Mode::kPFrames);
  const double all = quick(policy::Mode::kAll);
  EXPECT_LT(none, p_only);
  EXPECT_LT(i_only, p_only);
  EXPECT_LE(p_only, all * 1.1);  // P carries most packets: nearly "all".
  EXPECT_LT(none, all);
}

TEST(Experiment, PowerOrderingMatchesPaper) {
  const auto& w = slow_workload();
  auto power = [&](policy::Mode mode) {
    auto s = spec_for(w, mode);
    s.evaluate_quality = false;
    return run_experiment(s, w).power_w.mean();
  };
  const double none = power(policy::Mode::kNone);
  const double i_only = power(policy::Mode::kIFrames);
  const double all = power(policy::Mode::kAll);
  EXPECT_LT(none, i_only);
  EXPECT_LT(i_only, all);
}

TEST(Experiment, PredictionsTrackMeasurements) {
  const auto& w = slow_workload();
  const auto r = run_experiment(spec_for(w, policy::Mode::kIFrames), w);
  // Analysis vs experiment: same regime, not orders of magnitude apart.
  EXPECT_GT(r.predicted_delay.mean_delay_ms, 0.2 * r.delay_ms.mean());
  EXPECT_LT(r.predicted_delay.mean_delay_ms, 5.0 * r.delay_ms.mean());
  EXPECT_NEAR(r.predicted_eavesdropper.psnr_db,
              r.eavesdropper_psnr_db.mean(), 6.0);
  EXPECT_NEAR(r.predicted_receiver.psnr_db, r.receiver_psnr_db.mean(), 8.0);
  EXPECT_NEAR(r.predicted_power.mean_power_w, r.power_w.mean(),
              0.25 * r.power_w.mean());
}

TEST(Experiment, TcpIsSlowerButSameDistortionStory) {
  const auto& w = slow_workload();
  auto udp_spec = spec_for(w, policy::Mode::kIFrames);
  auto tcp_spec = udp_spec;
  tcp_spec.pipeline.transport = Transport::kHttpTcp;
  const auto udp = run_experiment(udp_spec, w);
  const auto tcp = run_experiment(tcp_spec, w);
  EXPECT_GT(tcp.delay_ms.mean(), udp.delay_ms.mean());
  EXPECT_LT(tcp.eavesdropper_psnr_db.mean(), 25.0);
  EXPECT_GT(tcp.receiver_psnr_db.mean(), 30.0);
}

TEST(Experiment, EncryptionStatsMatchPolicy) {
  const auto& w = slow_workload();
  const auto r = run_experiment(spec_for(w, policy::Mode::kAll), w);
  EXPECT_DOUBLE_EQ(r.encryption.packet_fraction(), 1.0);
  EXPECT_DOUBLE_EQ(r.encryption.byte_fraction(), 1.0);
  const auto none = run_experiment(spec_for(w, policy::Mode::kNone), w);
  EXPECT_DOUBLE_EQ(none.encryption.packet_fraction(), 0.0);
}

TEST(Advisor, RecommendsCheapestConfidentialPolicy) {
  const auto& w = slow_workload();
  PipelineConfig pipeline;
  pipeline.device = samsung_galaxy_s2();
  const auto probe = simulate_transfer(pipeline, w.packets, 12);
  const auto traffic = calibrate_traffic(w.packets, probe.timings, w.fps);
  const auto service =
      calibrate_service(w.packets, probe.timings, pipeline, traffic);
  DistortionInputs di;
  di.gop_size = w.codec.gop_size;
  di.n_gops = 3;
  di.sensitivity_fraction = default_sensitivity(w.motion);
  di.base_mse = w.base_mse;
  di.null_mse = w.null_mse;
  di.inter = w.inter;
  AdvisorRequest request;
  request.max_eavesdropper_psnr_db = 20.0;
  const auto result = advise(request, traffic, service, pipeline.device, di,
                             1.0 - pipeline.eavesdropper_loss_prob);
  ASSERT_TRUE(result.recommendation.has_value());
  EXPECT_TRUE(result.recommendation->confidential);
  // "none" must never qualify at a 20 dB ceiling for this content.
  for (const auto& eval : result.evaluations) {
    if (eval.policy.mode == policy::Mode::kNone) {
      EXPECT_FALSE(eval.confidential);
    }
  }
  // The recommendation minimizes delay among confidential candidates.
  for (const auto& eval : result.evaluations) {
    if (eval.confidential) {
      EXPECT_LE(result.recommendation->delay.mean_delay_ms,
                eval.delay.mean_delay_ms + 1e-9);
    }
  }
}

TEST(Workload, ValidatesInputs) {
  EXPECT_THROW((void)build_workload(video::MotionLevel::kLow, 30, 10, 1),
               std::invalid_argument);
}

TEST(Experiment, ValidatesRepetitions) {
  auto spec = spec_for(slow_workload(), policy::Mode::kNone);
  spec.repetitions = 0;
  EXPECT_THROW((void)run_experiment(spec, slow_workload()), std::invalid_argument);
}

}  // namespace
}  // namespace tv::core
