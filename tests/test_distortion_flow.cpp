#include "distortion/gop_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"
#include "video/frame.hpp"

namespace tv::distortion {
namespace {

DistanceDistortion linear_curve(double slope, int max_d = 12) {
  DistanceSamples samples;
  for (int d = 1; d <= max_d; ++d) {
    samples.distances.push_back(d);
    samples.mse.push_back(slope * d);
  }
  return DistanceDistortion::fit(samples, 3);
}

FlowModelParameters base_params() {
  FlowModelParameters p;
  p.gop_size = 30;
  p.p_i_success = 0.95;
  p.p_p_success = 0.99;
  p.d_min = 10.0;
  p.d_max = 400.0;
  p.null_reference_mse = 2000.0;
  return p;
}

TEST(FlowModel, IntraDistortionDecreasesWithLossPosition) {
  const FlowDistortionModel m{base_params(), linear_curve(30.0)};
  double prev = 1e9;
  for (int i = 1; i <= 29; ++i) {
    const double d = m.intra_distortion(i);
    EXPECT_LT(d, prev) << "i = " << i;
    EXPECT_GE(d, 0.0);
    prev = d;
  }
  // Early loss approaches d_max scale; late loss is tiny (eq. 21).
  EXPECT_GT(m.intra_distortion(1), 0.8 * base_params().d_max);
  EXPECT_LT(m.intra_distortion(29), base_params().d_min);
}

TEST(FlowModel, FirstLossProbabilitiesFormSubDistribution) {
  const FlowDistortionModel m{base_params(), linear_curve(30.0)};
  double total = 0.0;
  for (int i = 1; i <= 29; ++i) total += m.first_loss_probability(i);
  // P(I ok) * P(some P lost).
  const double expected = 0.95 * (1.0 - std::pow(0.99, 29));
  EXPECT_NEAR(total, expected, 1e-12);
}

TEST(FlowModel, PerfectChannelLeavesOnlyCodingDistortion) {
  FlowModelParameters p = base_params();
  p.p_i_success = 1.0;
  p.p_p_success = 1.0;
  p.base_mse = 7.5;
  const FlowDistortionModel m{p, linear_curve(30.0)};
  EXPECT_NEAR(m.flow_average_distortion(10), 7.5, 1e-12);
}

TEST(FlowModel, AllIFramesLostSticksAtNullReference) {
  // q_I = 1 at the eavesdropper means P_I = 0: the decoder never gets a
  // reference and every GOP costs the Case-3 maximum.
  FlowModelParameters p = base_params();
  p.p_i_success = 0.0;
  const FlowDistortionModel m{p, linear_curve(30.0)};
  EXPECT_NEAR(m.flow_average_distortion(8), p.null_reference_mse, 1e-9);
}

TEST(FlowModel, DistortionDecreasesInSuccessRates) {
  const auto curve = linear_curve(30.0);
  double prev = 1e18;
  for (double pi : {0.2, 0.5, 0.8, 0.95, 0.999}) {
    FlowModelParameters p = base_params();
    p.p_i_success = pi;
    const FlowDistortionModel m{p, curve};
    const double d = m.flow_average_distortion(10);
    EXPECT_LT(d, prev);
    prev = d;
  }
  prev = 1e18;
  for (double pp : {0.9, 0.95, 0.99, 0.999}) {
    FlowModelParameters p = base_params();
    p.p_p_success = pp;
    const FlowDistortionModel m{p, curve};
    const double d = m.flow_average_distortion(10);
    EXPECT_LT(d, prev);
    prev = d;
  }
}

class FlowDpVsMc
    : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(FlowDpVsMc, DynamicProgramMatchesMonteCarlo) {
  const auto [pi, pp] = GetParam();
  FlowModelParameters p = base_params();
  p.p_i_success = pi;
  p.p_p_success = pp;
  const FlowDistortionModel m{p, linear_curve(25.0)};
  util::Rng rng{404};
  const double dp = m.flow_average_distortion(12);
  const double mc = m.flow_average_distortion_mc(12, 30000, rng);
  EXPECT_NEAR(dp, mc, 0.03 * dp + 0.5);
}

INSTANTIATE_TEST_SUITE_P(
    Rates, FlowDpVsMc,
    ::testing::Values(std::pair{0.98, 0.999}, std::pair{0.9, 0.98},
                      std::pair{0.5, 0.95}, std::pair{0.15, 0.9},
                      std::pair{0.0, 0.9}));

TEST(FlowModel, ConsecutiveILossesCompoundViaAge) {
  // Lower P_I -> older references on average -> more inter-GOP distortion
  // than a single-GOP freeze would suggest.
  FlowModelParameters p = base_params();
  p.p_i_success = 0.3;
  p.p_p_success = 1.0;
  const auto curve = linear_curve(30.0, 40);
  const FlowDistortionModel m{p, curve};
  const double avg = m.flow_average_distortion(40);
  // With P_I = 0.3, many GOPs decode against references more than one GOP
  // old, so the average must exceed P(loss) * D(age = 1 GOP average).
  double one_gop_freeze = 0.0;
  for (int j = 0; j < 30; ++j) one_gop_freeze += curve(1.0 + j);
  one_gop_freeze /= 30.0;
  EXPECT_GT(avg, 0.7 * one_gop_freeze);
}

TEST(FlowModel, PsnrMappingUsesEquation28) {
  FlowModelParameters p = base_params();
  p.p_i_success = 1.0;
  p.p_p_success = 1.0;
  p.base_mse = 25.0;
  const FlowDistortionModel m{p, linear_curve(10.0)};
  EXPECT_NEAR(m.flow_average_psnr(5),
              video::psnr_from_mse(25.0), 1e-9);
}

TEST(FlowModel, ValidatesParameters) {
  EXPECT_THROW(FlowDistortionModel(FlowModelParameters{.gop_size = 1},
                                   linear_curve(10.0)),
               std::invalid_argument);
  FlowModelParameters bad = base_params();
  bad.p_i_success = 1.5;
  EXPECT_THROW(FlowDistortionModel(bad, linear_curve(10.0)),
               std::invalid_argument);
  const FlowDistortionModel m{base_params(), linear_curve(10.0)};
  EXPECT_THROW((void)m.intra_distortion(0), std::invalid_argument);
  EXPECT_THROW((void)m.intra_distortion(30), std::invalid_argument);
  EXPECT_THROW((void)m.flow_average_distortion(0), std::invalid_argument);
}

}  // namespace
}  // namespace tv::distortion
