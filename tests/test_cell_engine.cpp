// The cell-scale multi-flow engine: contention mapping, deadline
// scheduling, the n=1 single-flow acceptance criterion and the
// thread-count determinism contract (docs/cell.md).
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "cell/cell.hpp"
#include "cell/contention.hpp"
#include "cell/scheduler.hpp"
#include "core/pipeline.hpp"
#include "crypto/suite.hpp"
#include "net/packetizer.hpp"
#include "util/thread_pool.hpp"

namespace tv::cell {
namespace {

void expect_bitwise_equal(const util::RunningStats& a,
                          const util::RunningStats& b) {
  EXPECT_EQ(a.count(), b.count());
  EXPECT_EQ(a.mean(), b.mean());
  EXPECT_EQ(a.variance(), b.variance());
  EXPECT_EQ(a.min(), b.min());
  EXPECT_EQ(a.max(), b.max());
}

// --- Contention mapping. ---------------------------------------------------

TEST(Contention, SoloFlowSeesNoCollisions) {
  ContentionConfig config;
  config.video = {1, 16, 6};
  const ContentionSolution s = solve_contention(config);
  EXPECT_EQ(s.contenders, 1);
  EXPECT_EQ(s.collision_prob, 0.0);
  EXPECT_EQ(s.mac_success_prob, 1.0);
  EXPECT_GT(s.backoff_rate, 0.0);
  EXPECT_GT(s.per_flow_throughput_mbps, 0.0);
  EXPECT_GT(s.mean_slot_s, 0.0);
}

TEST(Contention, ChannelErrorComposesIntoMacSuccess) {
  ContentionConfig config;
  config.video = {1, 16, 6};
  config.channel_error_prob = 0.2;
  const ContentionSolution s = solve_contention(config);
  EXPECT_DOUBLE_EQ(s.mac_success_prob, 0.8);
}

TEST(Contention, CollisionsGrowAndThroughputShrinksWithPopulation) {
  double last_success = 2.0;
  double last_collision = -1.0;
  double last_throughput = 1e9;
  for (int flows : {1, 2, 4, 8, 16}) {
    ContentionConfig config;
    config.video = {flows, 16, 6};
    const ContentionSolution s = solve_contention(config);
    EXPECT_GT(s.collision_prob, last_collision) << "flows=" << flows;
    EXPECT_LT(s.mac_success_prob, last_success) << "flows=" << flows;
    EXPECT_LT(s.per_flow_throughput_mbps, last_throughput)
        << "flows=" << flows;
    last_collision = s.collision_prob;
    last_success = s.mac_success_prob;
    last_throughput = s.per_flow_throughput_mbps;
  }
}

TEST(Contention, BackgroundStationsHurtTheVideoClass) {
  ContentionConfig alone;
  alone.video = {4, 16, 6};
  ContentionConfig shared = alone;
  shared.background = {6, 32, 6};
  const ContentionSolution a = solve_contention(alone);
  const ContentionSolution b = solve_contention(shared);
  EXPECT_EQ(b.contenders, 10);
  EXPECT_GT(b.collision_prob, a.collision_prob);
  EXPECT_LT(b.per_flow_throughput_mbps, a.per_flow_throughput_mbps);
  EXPECT_LT(b.backoff_rate, a.backoff_rate);
}

TEST(Contention, RejectsUnusableConfigurations) {
  ContentionConfig config;
  config.video = {0, 16, 6};
  EXPECT_THROW((void)solve_contention(config), std::invalid_argument);
  config.video = {1, 16, 6};
  config.mean_wire_bytes = 0.0;
  EXPECT_THROW((void)solve_contention(config), std::invalid_argument);
  config.mean_wire_bytes = 1200.0;
  config.channel_error_prob = 1.0;
  EXPECT_THROW((void)solve_contention(config), std::invalid_argument);
}

// --- Deadline scheduler. ---------------------------------------------------

std::vector<FlowDemand> uniform_demands(int flows, double deadline_s) {
  std::vector<FlowDemand> demands(static_cast<std::size_t>(flows));
  for (int f = 0; f < flows; ++f) {
    FlowDemand& d = demands[static_cast<std::size_t>(f)];
    d.index = static_cast<std::size_t>(f);
    d.policy = {policy::Mode::kAll, crypto::Algorithm::kAes256, 0.0};
    d.deadline_s = deadline_s;
    d.clip_duration_s = 1.0;
    d.packet_count = 1500;
    d.i_packet_share = 0.25;
    d.encryption_mean_s = 2e-4;
    d.transmission_mean_s = 3e-3;
  }
  return demands;
}

ContentionConfig scheduler_cell() {
  ContentionConfig config;
  config.video = {1, 16, 6};  // overwritten with the admitted count.
  return config;
}

TEST(Scheduler, RejectsEmptyDemandList) {
  const DeadlineScheduler scheduler;
  EXPECT_THROW((void)scheduler.schedule({}, scheduler_cell()),
               std::invalid_argument);
}

TEST(Scheduler, FlowsWithoutDeadlinesAreAllAdmittedUntouched) {
  const DeadlineScheduler scheduler;
  const ScheduleResult r =
      scheduler.schedule(uniform_demands(6, 0.0), scheduler_cell());
  EXPECT_EQ(r.admitted, 6);
  EXPECT_EQ(r.deferred, 0);
  EXPECT_EQ(r.total_degrade_steps, 0);
  for (const FlowDecision& d : r.flows) {
    EXPECT_TRUE(d.admitted);
    EXPECT_EQ(d.degrade_steps, 0);
    EXPECT_GT(d.predicted_completion_s, 0.0);
  }
}

TEST(Scheduler, GenerousDeadlinesAdmitEveryone) {
  const DeadlineScheduler scheduler;
  // Learn the loaded-cell completion time, then deadline comfortably above.
  const ScheduleResult probe =
      scheduler.schedule(uniform_demands(4, 0.0), scheduler_cell());
  const double worst = probe.flows[0].predicted_completion_s;
  const ScheduleResult r =
      scheduler.schedule(uniform_demands(4, worst * 1.5), scheduler_cell());
  EXPECT_EQ(r.admitted, 4);
  EXPECT_EQ(r.deferred, 0);
  EXPECT_EQ(r.total_degrade_steps, 0);
}

TEST(Scheduler, OverloadDegradesThenSheds) {
  const DeadlineScheduler scheduler;
  // Far below even a lone unencrypted flow's completion: the ladder is
  // walked to its floor, then flows defer — all but the last one.
  const ScheduleResult r =
      scheduler.schedule(uniform_demands(4, 1.05), scheduler_cell());
  EXPECT_GT(r.total_degrade_steps, 0);
  EXPECT_GT(r.deferred, 0);
  EXPECT_GE(r.admitted, 1);
  EXPECT_EQ(r.admitted + r.deferred, 4);
  EXPECT_GT(r.iterations, 1);
}

TEST(Scheduler, NeverDefersTheLastFlow) {
  const DeadlineScheduler scheduler;
  const ScheduleResult r =
      scheduler.schedule(uniform_demands(3, 0.01), scheduler_cell());
  EXPECT_GE(r.admitted, 1);
  int admitted = 0;
  for (const FlowDecision& d : r.flows) admitted += d.admitted ? 1 : 0;
  EXPECT_EQ(admitted, r.admitted);
}

TEST(Scheduler, DegradeAndSheddingCanBeDisabled) {
  SchedulerConfig no_degrade;
  no_degrade.allow_degrade = false;
  const ScheduleResult a = DeadlineScheduler{no_degrade}.schedule(
      uniform_demands(4, 1.05), scheduler_cell());
  EXPECT_EQ(a.total_degrade_steps, 0);

  SchedulerConfig no_shed;
  no_shed.allow_shedding = false;
  const ScheduleResult b = DeadlineScheduler{no_shed}.schedule(
      uniform_demands(4, 1.05), scheduler_cell());
  EXPECT_EQ(b.deferred, 0);
  EXPECT_EQ(b.admitted, 4);
}

TEST(Scheduler, IsDeterministic) {
  const DeadlineScheduler scheduler;
  const auto demands = uniform_demands(5, 1.2);
  const ScheduleResult a = scheduler.schedule(demands, scheduler_cell());
  const ScheduleResult b = scheduler.schedule(demands, scheduler_cell());
  ASSERT_EQ(a.flows.size(), b.flows.size());
  for (std::size_t f = 0; f < a.flows.size(); ++f) {
    EXPECT_EQ(a.flows[f].admitted, b.flows[f].admitted);
    EXPECT_EQ(a.flows[f].degrade_steps, b.flows[f].degrade_steps);
    EXPECT_EQ(a.flows[f].predicted_completion_s,
              b.flows[f].predicted_completion_s);
  }
  EXPECT_EQ(a.iterations, b.iterations);
}

TEST(Scheduler, EncryptionLatencyLengthensPredictedCompletion) {
  const auto demands = uniform_demands(2, 0.0);
  const ContentionSolution sol = solve_contention(scheduler_cell());
  const policy::EncryptionPolicy all{policy::Mode::kAll,
                                     crypto::Algorithm::kAes256, 0.0};
  const policy::EncryptionPolicy none{policy::Mode::kNone,
                                      crypto::Algorithm::kAes256, 0.0};
  EXPECT_GT(DeadlineScheduler::predict_completion(demands[0], all, sol),
            DeadlineScheduler::predict_completion(demands[0], none, sol));
}

// --- Cell engine. ----------------------------------------------------------

CellSpec small_cell() {
  CellSpec spec;
  spec.flows = 1;
  spec.motions = {video::MotionLevel::kLow};
  spec.gop_sizes = {9};
  spec.policies = {{policy::Mode::kIFrames, crypto::Algorithm::kAes256, 0.0}};
  spec.algorithms = {crypto::Algorithm::kAes128};
  spec.deadlines_s = {0.0};
  spec.frames = 18;
  spec.repetitions = 4;
  spec.evaluate_quality = false;
  spec.seed = 33;
  return spec;
}

TEST(CellSpecValidate, RejectsBadSpecs) {
  core::WorkloadCache cache;
  CellSpec spec = small_cell();
  spec.flows = 0;
  EXPECT_THROW((void)run_cell(spec, cache), std::invalid_argument);
  spec = small_cell();
  spec.gop_sizes = {32};  // frames (18) must cover every GOP.
  EXPECT_THROW((void)run_cell(spec, cache), std::invalid_argument);
  spec = small_cell();
  spec.fade_prob = 1.0;
  EXPECT_THROW((void)run_cell(spec, cache), std::invalid_argument);
  spec = small_cell();
  spec.deadlines_s = {};
  EXPECT_THROW((void)run_cell(spec, cache), std::invalid_argument);
}

TEST(CellSpecValidate, ResolvesAxesRoundRobin) {
  CellSpec spec = small_cell();
  spec.flows = 5;
  spec.motions = {video::MotionLevel::kLow, video::MotionLevel::kHigh};
  spec.gop_sizes = {9, 6, 3};
  const FlowConfig f0 = resolve_flow(spec, 0);
  const FlowConfig f3 = resolve_flow(spec, 3);
  const FlowConfig f4 = resolve_flow(spec, 4);
  EXPECT_EQ(f0.motion, video::MotionLevel::kLow);
  EXPECT_EQ(f3.motion, video::MotionLevel::kHigh);
  EXPECT_EQ(f0.gop_size, 9);
  EXPECT_EQ(f3.gop_size, 9);
  EXPECT_EQ(f4.gop_size, 6);
  // The algorithm axis overrides the policy shape's own algorithm.
  EXPECT_EQ(f0.policy.algorithm, crypto::Algorithm::kAes128);
}

// The ISSUE acceptance criterion: at N=1 (no background, no fading) the
// cell engine must reproduce a standalone core::simulate_transfer run wired
// with the same contention-derived knobs — within 1% on E[W], and in fact
// bit for bit, because the engine is the same code path.
TEST(CellEngine, SingleFlowMatchesStandalonePipeline) {
  const CellSpec spec = small_cell();
  core::WorkloadCache cache;
  const CellResult cell = run_cell(spec, cache);
  ASSERT_EQ(cell.admitted, 1);
  ASSERT_EQ(cell.flow_outcomes.size(), 1u);
  const FlowOutcome& out = cell.flow_outcomes[0];
  ASSERT_EQ(out.completed_repetitions, spec.repetitions);

  // Rebuild flow 0's exact pipeline by hand from the published seeds and
  // the cell's contention solution.
  core::WorkloadCache independent;
  const auto workload = independent.get(spec.motions[0], spec.gop_sizes[0],
                                        spec.frames, spec.seed, spec.fps);
  std::vector<net::VideoPacket> packets = workload->packets;
  policy::EncryptionPolicy policy = spec.policies[0];
  policy.algorithm = spec.algorithms[0];
  const std::vector<bool> selected = policy.select(packets);
  const std::uint64_t cipher_seed =
      util::derive_seed(spec.seed, kCipherStream, 0);
  const auto cipher =
      crypto::make_cipher_from_seed(policy.algorithm, cipher_seed);
  std::vector<std::uint8_t> iv(cipher->block_size());
  std::uint64_t state = cipher_seed ^ 0x1234567890abcdefULL;
  for (auto& b : iv) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    b = static_cast<std::uint8_t>(state >> 56);
  }
  net::encrypt_selected(packets, selected, *cipher, iv);

  core::PipelineConfig pipeline = spec.pipeline;
  pipeline.device = spec.devices[0];
  pipeline.algorithm = policy.algorithm;
  pipeline.fps = spec.fps;
  pipeline.phy = spec.phy;
  pipeline.backoff_rate = cell.contention.backoff_rate;
  pipeline.mac_success_prob = cell.contention.mac_success_prob * (1.0 - 0.0);
  pipeline.receiver_loss_prob =
      1.0 - (1.0 - spec.pipeline.receiver_loss_prob) * (1.0 - 0.0);

  util::RunningStats delay_ms;
  util::RunningStats duration_s;
  for (int r = 0; r < spec.repetitions; ++r) {
    const core::TransferResult transfer = core::simulate_transfer(
        pipeline, packets,
        flow_transfer_seed(spec.seed, 0, static_cast<std::uint64_t>(r)));
    delay_ms.add(transfer.mean_delay_ms());
    duration_s.add(transfer.duration_s);
  }

  // The documented acceptance band...
  EXPECT_NEAR(out.delay_ms.mean(), delay_ms.mean(),
              0.01 * delay_ms.mean());
  // ...and the stronger truth: identical seeds, identical knobs, identical
  // arithmetic.
  expect_bitwise_equal(out.delay_ms, delay_ms);
  expect_bitwise_equal(out.duration_s, duration_s);
}

TEST(CellEngine, DelayGrowsWithPopulation) {
  CapacitySpec spec;
  spec.flow_counts = {1, 6};
  spec.base = small_cell();
  spec.base.repetitions = 2;
  CellCollectSink sink;
  CellRunner runner;
  (void)runner.run(spec, sink);
  ASSERT_EQ(sink.points.size(), 2u);
  const CellResult& one = sink.points[0].result;
  const CellResult& six = sink.points[1].result;
  EXPECT_GT(six.contention.collision_prob, one.contention.collision_prob);
  EXPECT_LT(six.contention.per_flow_throughput_mbps,
            one.contention.per_flow_throughput_mbps);
  EXPECT_GT(six.delay_ms.mean(), one.delay_ms.mean());
  EXPECT_GT(six.duration_s.mean(), one.duration_s.mean());
}

TEST(CellEngine, DeadlineMissesAreCounted) {
  CellSpec spec = small_cell();
  // Far tighter than any transfer can finish; the lone flow is never
  // deferred, so every completed repetition misses.
  spec.deadlines_s = {0.01};
  core::WorkloadCache cache;
  const CellResult r = run_cell(spec, cache);
  EXPECT_EQ(r.admitted, 1);
  EXPECT_EQ(r.deadline_repetitions,
            static_cast<std::size_t>(spec.repetitions));
  EXPECT_EQ(r.deadline_misses, r.deadline_repetitions);
  EXPECT_DOUBLE_EQ(r.deadline_miss_fraction(), 1.0);
}

TEST(CellEngine, FadedRepetitionsRaiseLossAndAreCounted) {
  CellSpec spec = small_cell();
  spec.flows = 4;
  spec.fade_prob = 0.4;
  spec.mean_fade_reps = 2.0;
  spec.fade_error_prob = 0.3;
  core::WorkloadCache cache;
  const CellResult r = run_cell(spec, cache);
  int faded = 0;
  for (const FlowOutcome& o : r.flow_outcomes) faded += o.faded_repetitions;
  EXPECT_GT(faded, 0);  // 16 coherence blocks at stationary prob 0.4.
  EXPECT_LT(faded, 4 * spec.repetitions);
}

TEST(CellEngine, DeferredFlowsGetNoAirtime) {
  CellSpec spec = small_cell();
  spec.flows = 6;
  spec.frames = 18;
  spec.repetitions = 2;
  // Infeasible deadline: the scheduler walks the ladder, then sheds.
  spec.deadlines_s = {0.05};
  core::WorkloadCache cache;
  const CellResult r = run_cell(spec, cache);
  EXPECT_GT(r.deferred, 0);
  EXPECT_GE(r.admitted, 1);
  for (const FlowOutcome& o : r.flow_outcomes) {
    if (!o.admitted) {
      EXPECT_EQ(o.completed_repetitions, 0);
      EXPECT_EQ(o.delay_ms.count(), 0u);
    }
  }
  // Aggregates cover admitted flows only.
  std::size_t admitted_reps = 0;
  for (const FlowOutcome& o : r.flow_outcomes) {
    if (o.admitted) {
      admitted_reps += static_cast<std::size_t>(o.completed_repetitions);
    }
  }
  EXPECT_EQ(r.delay_ms.count(), admitted_reps);
}

// The determinism contract (named so the TSan pass of run_checks.sh picks
// it up): a capacity sweep is byte- and bit-identical between a serial
// runner and an 8-thread pool.
TEST(CellSweepRunner, EightThreadsBitIdenticalToSerial) {
  CapacitySpec spec;
  spec.flow_counts = {1, 3};
  spec.base = small_cell();
  spec.base.repetitions = 2;
  spec.base.evaluate_quality = true;
  spec.base.fade_prob = 0.25;
  spec.base.fade_error_prob = 0.3;
  spec.base.deadlines_s = {1.5, 0.0};

  CellCollectSink serial;
  std::ostringstream serial_jsonl;
  {
    CellRunner runner;  // no pool.
    CellJsonlSink jsonl{serial_jsonl};
    (void)runner.run(spec, jsonl);
    (void)runner.run(spec, serial);
  }

  CellCollectSink pooled;
  std::ostringstream pooled_jsonl;
  {
    util::ThreadPool pool{8};
    CellRunner runner{&pool};
    CellJsonlSink jsonl{pooled_jsonl};
    const auto summary = runner.run(spec, jsonl);
    EXPECT_EQ(summary.threads, 8u);
    (void)runner.run(spec, pooled);
  }

  // The streamed export is byte-identical...
  EXPECT_EQ(serial_jsonl.str(), pooled_jsonl.str());

  // ...stays valid JSON even where slack is unbounded (no-deadline flows
  // must serialize +inf slack as null, not a bare "inf" token)...
  EXPECT_NE(serial_jsonl.str().find("\"slack_s\":null"), std::string::npos);
  EXPECT_EQ(serial_jsonl.str().find(":inf"), std::string::npos);
  EXPECT_EQ(serial_jsonl.str().find(":nan"), std::string::npos);

  // ...and so is every in-memory statistic and scheduling decision.
  ASSERT_EQ(serial.points.size(), pooled.points.size());
  for (std::size_t i = 0; i < serial.points.size(); ++i) {
    const CellResult& a = serial.points[i].result;
    const CellResult& b = pooled.points[i].result;
    EXPECT_EQ(a.admitted, b.admitted);
    EXPECT_EQ(a.deferred, b.deferred);
    EXPECT_EQ(a.total_degrade_steps, b.total_degrade_steps);
    expect_bitwise_equal(a.delay_ms, b.delay_ms);
    expect_bitwise_equal(a.duration_s, b.duration_s);
    expect_bitwise_equal(a.power_w, b.power_w);
    expect_bitwise_equal(a.energy_j, b.energy_j);
    expect_bitwise_equal(a.receiver_psnr_db, b.receiver_psnr_db);
    expect_bitwise_equal(a.eavesdropper_psnr_db, b.eavesdropper_psnr_db);
    ASSERT_EQ(a.flow_outcomes.size(), b.flow_outcomes.size());
    for (std::size_t f = 0; f < a.flow_outcomes.size(); ++f) {
      EXPECT_EQ(a.flow_outcomes[f].admitted, b.flow_outcomes[f].admitted);
      EXPECT_EQ(a.flow_outcomes[f].faded_repetitions,
                b.flow_outcomes[f].faded_repetitions);
      expect_bitwise_equal(a.flow_outcomes[f].delay_ms,
                           b.flow_outcomes[f].delay_ms);
    }
  }
}

}  // namespace
}  // namespace tv::cell
