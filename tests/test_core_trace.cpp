// The tracing subsystem: histogram binning, per-stage aggregation, the
// JSONL event format, and the run_experiment plumbing (trace + stage-stats
// collection, and the invariant that turning instrumentation on does not
// change any statistic).
#include "core/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/experiment.hpp"

namespace tv::core {
namespace {

TEST(TimeHistogram, BinsAreLogSpacedWithExplicitUnderAndOverflow) {
  TimeHistogram h;
  h.add(0.0);                          // exact zero -> underflow bin.
  h.add(TimeHistogram::kFloorS / 2);   // below floor -> underflow bin.
  h.add(TimeHistogram::kFloorS);       // exactly the floor -> first bin.
  h.add(1e30);                         // far past the top -> overflow bin.
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.count(TimeHistogram::kBins - 1), 1u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(TimeHistogram, EveryValueLandsInTheBinCoveringIt) {
  TimeHistogram h;
  const double values[] = {2e-7, 5e-6, 1.3e-4, 2.5e-3, 0.04, 0.7, 9.0};
  for (const double v : values) h.add(v);
  EXPECT_EQ(h.total(), 7u);
  std::uint64_t total = 0;
  for (int b = 0; b < TimeHistogram::kBins; ++b) {
    for (std::uint64_t c = 0; c < h.count(b); ++c) ++total;
    if (h.count(b) == 0) continue;
    // A populated interior bin's lower edge must not exceed some value and
    // the next bin's edge must exceed it.
    if (b == 0 || b == TimeHistogram::kBins - 1) continue;
    bool covered = false;
    for (const double v : values) {
      if (v >= TimeHistogram::bin_lower_s(b) &&
          (b + 1 == TimeHistogram::kBins - 1 ||
           v < TimeHistogram::bin_lower_s(b + 1))) {
        covered = true;
      }
    }
    EXPECT_TRUE(covered) << "bin " << b << " populated but covers no value";
  }
  EXPECT_EQ(total, 7u);
}

TEST(TimeHistogram, MergeAddsCounts) {
  TimeHistogram a;
  TimeHistogram b;
  a.add(1e-3);
  b.add(1e-3);
  b.add(0.0);
  a.merge(b);
  EXPECT_EQ(a.total(), 3u);
  EXPECT_EQ(a.count(0), 1u);
}

TEST(StageStatsCollector, FoldsEventsIntoPerStageAggregates) {
  StageStatsCollector collector;
  collector.event({Stage::kService, "encrypt", 0, -1, 0.0, 2e-3});
  collector.event({Stage::kService, "transmit", 0, -1, 0.0, 4e-3});
  collector.event({Stage::kChannel, "deliver", 0, -1, 0.0, 0.0});
  const auto& service = collector.stats[Stage::kService];
  EXPECT_EQ(service.events, 2u);
  EXPECT_DOUBLE_EQ(service.time_s.mean(), 3e-3);
  EXPECT_EQ(service.histogram.total(), 2u);
  EXPECT_EQ(collector.stats[Stage::kChannel].events, 1u);
  EXPECT_EQ(collector.stats[Stage::kProducer].events, 0u);
}

TEST(StageAggregates, MergeCombinesCountsAndMoments) {
  StageAggregates a;
  StageAggregates b;
  a[Stage::kTransport].add(1.0);
  b[Stage::kTransport].add(3.0);
  a.merge(b);
  EXPECT_EQ(a[Stage::kTransport].events, 2u);
  EXPECT_DOUBLE_EQ(a[Stage::kTransport].time_s.mean(), 2.0);
  EXPECT_EQ(a[Stage::kTransport].histogram.total(), 2u);
}

TEST(JsonlTraceSink, EmitsOneFullPrecisionObjectPerEvent) {
  std::ostringstream out;
  JsonlTraceSink sink{out};
  // Dyadic values only: %.17g round-trips them as the shortest spelling.
  sink.event({Stage::kService, "encrypt", 12, 3, 0.25, 0.03125});
  sink.event({Stage::kChannel, "deliver", 12, 3, 0.5, 0.0});
  const std::string text = out.str();
  EXPECT_EQ(text,
            "{\"rep\":3,\"packet\":12,\"stage\":\"service\","
            "\"kind\":\"encrypt\",\"t\":0.25,\"value_s\":0.03125}\n"
            "{\"rep\":3,\"packet\":12,\"stage\":\"channel\","
            "\"kind\":\"deliver\",\"t\":0.5,\"value_s\":0}\n");
}

TEST(StampTraceSink, StampsRepetitionAndFansOut) {
  StageStatsCollector first;
  StageStatsCollector second;
  std::ostringstream out;
  JsonlTraceSink jsonl{out};
  StampTraceSink stamp{&jsonl, &first, 4};
  stamp.event({Stage::kProducer, "release", 0, -1, 0.0, 1e-3});
  EXPECT_EQ(first.stats[Stage::kProducer].events, 1u);
  EXPECT_NE(out.str().find("\"rep\":4"), std::string::npos);
  // Null sinks are skipped.
  StampTraceSink solo{&second, nullptr, 0};
  solo.event({Stage::kProducer, "release", 0, -1, 0.0, 1e-3});
  EXPECT_EQ(second.stats[Stage::kProducer].events, 1u);
}

// --- run_experiment plumbing. --------------------------------------------

ExperimentSpec small_spec(const Workload& w) {
  ExperimentSpec spec;
  spec.policy = {policy::Mode::kIFrames, crypto::Algorithm::kAes256, 0.0};
  spec.pipeline.device = samsung_galaxy_s2();
  spec.repetitions = 2;
  spec.seed = 17;
  spec.sensitivity_fraction = default_sensitivity(w.motion);
  spec.evaluate_quality = false;
  return spec;
}

const Workload& trace_workload() {
  static const Workload w =
      build_workload(video::MotionLevel::kLow, 10, 20, 404);
  return w;
}

TEST(ExperimentTrace, EmitsStampedValidJsonlPerPacketEvents) {
  const auto& w = trace_workload();
  std::ostringstream out;
  JsonlTraceSink sink{out};
  auto spec = small_spec(w);
  spec.trace = &sink;
  (void)run_experiment(spec, w);

  std::istringstream lines{out.str()};
  std::string line;
  std::size_t count = 0;
  bool saw_rep1 = false;
  while (std::getline(lines, line)) {
    ++count;
    // Minimal JSONL validity: an object per line with the schema's keys.
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"rep\":"), std::string::npos) << line;
    EXPECT_NE(line.find("\"packet\":"), std::string::npos) << line;
    EXPECT_NE(line.find("\"stage\":\""), std::string::npos) << line;
    EXPECT_NE(line.find("\"kind\":\""), std::string::npos) << line;
    EXPECT_NE(line.find("\"t\":"), std::string::npos) << line;
    EXPECT_NE(line.find("\"value_s\":"), std::string::npos) << line;
    if (line.find("\"rep\":1,") != std::string::npos) saw_rep1 = true;
  }
  // Both repetitions produced events; each packet emits at least producer,
  // service and channel events.
  EXPECT_TRUE(saw_rep1);
  EXPECT_GE(count, 3u * w.packets.size());
}

TEST(ExperimentTrace, StageStatsCoverEveryStageAndMatchThePacketCount) {
  const auto& w = trace_workload();
  auto spec = small_spec(w);
  spec.collect_stage_stats = true;
  const auto r = run_experiment(spec, w);
  ASSERT_TRUE(r.stage_stats.has_value());
  const auto total_packets =
      static_cast<std::uint64_t>(spec.repetitions) * w.packets.size();
  // Producer releases and policy-gate verdicts are exactly one per packet
  // per repetition; transport reports one terminal verdict per packet.
  EXPECT_EQ((*r.stage_stats)[Stage::kProducer].events, total_packets);
  EXPECT_EQ((*r.stage_stats)[Stage::kPolicyGate].events, total_packets);
  EXPECT_EQ((*r.stage_stats)[Stage::kTransport].events, total_packets);
  // Service draws at least backoff + transmit per packet; the channel sees
  // at least one attempt outcome per packet.
  EXPECT_GE((*r.stage_stats)[Stage::kService].events, 2 * total_packets);
  EXPECT_GE((*r.stage_stats)[Stage::kChannel].events, total_packets);
}

TEST(ExperimentTrace, InstrumentationDoesNotChangeAnyStatistic) {
  const auto& w = trace_workload();
  auto plain = small_spec(w);
  auto instrumented = small_spec(w);
  instrumented.collect_stage_stats = true;
  std::ostringstream out;
  JsonlTraceSink sink{out};
  instrumented.trace = &sink;

  const auto a = run_experiment(plain, w);
  const auto b = run_experiment(instrumented, w);
  EXPECT_EQ(a.delay_ms.mean(), b.delay_ms.mean());
  EXPECT_EQ(a.delay_ms.stddev(), b.delay_ms.stddev());
  EXPECT_EQ(a.power_w.mean(), b.power_w.mean());
  EXPECT_EQ(a.encryption.encrypted_packets, b.encryption.encrypted_packets);
  EXPECT_FALSE(a.stage_stats.has_value());
  EXPECT_TRUE(b.stage_stats.has_value());
}

}  // namespace
}  // namespace tv::core
