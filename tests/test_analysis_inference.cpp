// The adversary's inference chain and the leakage scorer, on captures
// synthesized deterministically from the real sender pipeline.
#include <gtest/gtest.h>

#include <vector>

#include "analysis/leakage.hpp"
#include "analysis/sweep.hpp"
#include "core/experiment.hpp"

namespace tv::analysis {
namespace {

/// One in-memory sweep cell with explicit axes; both members of a
/// with/without-countermeasure pair get the same derived seed.
LeakageCellResult run_cell(const policy::EncryptionPolicy& pol,
                           const policy::ShapingPolicy& shaping,
                           video::MotionLevel motion = video::MotionLevel::kLow,
                           std::uint64_t seed = 1) {
  LeakageSpec spec;
  spec.policies = {pol};
  spec.shapings = {shaping};
  spec.motion = motion;
  spec.seed = seed;
  const std::vector<LeakageCell> cells = enumerate_leakage_cells(spec);
  const core::Workload workload =
      core::build_workload(spec.motion, spec.gop_size, spec.frames,
                           spec.seed, spec.pipeline.fps);
  return run_leakage_cell(spec, cells.front(), workload);
}

policy::EncryptionPolicy policy_of(const char* spec) {
  return policy::policy_from_string(spec, crypto::Algorithm::kAes256);
}

// ---- Acceptance: the headline adversary result.  Under every paper
// policy with no countermeasures the I-frames stand out by size alone —
// precision and recall at least 0.9 on deterministic captures.
TEST(AnalysisInference, IFrameDetectionBeats90PercentWithoutShaping) {
  for (const char* pol : {"none", "P", "I", "all"}) {
    for (const std::uint64_t seed : {1ull, 7ull, 42ull}) {
      const LeakageCellResult r =
          run_cell(policy_of(pol), policy::ShapingPolicy{},
                   video::MotionLevel::kLow, seed);
      EXPECT_GE(r.metrics.i_precision, 0.9)
          << "policy " << pol << " seed " << seed;
      EXPECT_GE(r.metrics.i_recall, 0.9)
          << "policy " << pol << " seed " << seed;
    }
  }
}

TEST(AnalysisInference, RecoversGopSizeOnUnshapedCaptures) {
  const LeakageCellResult r =
      run_cell(policy_of("I"), policy::ShapingPolicy{});
  EXPECT_EQ(r.metrics.gop_error, 0);
  EXPECT_EQ(r.inference.gop_size_est, 16);
}

TEST(AnalysisInference, ClassifiesAllThreeMotionPresets) {
  for (const auto motion :
       {video::MotionLevel::kLow, video::MotionLevel::kMedium,
        video::MotionLevel::kHigh}) {
    for (const std::uint64_t seed : {1ull, 7ull, 42ull}) {
      const LeakageCellResult r =
          run_cell(policy_of("none"), policy::ShapingPolicy{}, motion, seed);
      EXPECT_TRUE(r.metrics.motion_match)
          << to_string(motion) << " seed " << seed << " classified as "
          << to_string(r.inference.motion_est) << " (P/I ratio "
          << r.inference.p_over_i_size_ratio << ")";
    }
  }
}

TEST(AnalysisInference, EncryptedFractionTracksThePolicy) {
  // I-only encryption on the default workload marks a minority of
  // packets; the visible-marker estimate matches the true fraction.
  const LeakageCellResult r =
      run_cell(policy_of("I"), policy::ShapingPolicy{});
  EXPECT_GT(r.truth.encrypted_packet_fraction, 0.0);
  EXPECT_LT(r.truth.encrypted_packet_fraction, 1.0);
  EXPECT_LT(r.metrics.encrypted_fraction_error, 0.05);
}

TEST(AnalysisInference, PsnrProxyLandsNearTheMeasuredEavesdropperPsnr) {
  // The proxy feeds the adversary's own estimates into the Section 4.3
  // model; on a clean I-only capture it should land within a few dB of
  // the PSNR measured by decoding what the snooper captured.
  const LeakageCellResult r =
      run_cell(policy_of("I"), policy::ShapingPolicy{});
  EXPECT_GT(r.inference.eavesdropper_psnr_db_est, 0.0);
  EXPECT_GT(r.truth.eavesdropper_psnr_db, 0.0);
  EXPECT_LT(r.metrics.psnr_error_db, 6.0);
}

TEST(AnalysisInference, BitrateAndTrajectoryAreExactWithoutShaping) {
  const LeakageCellResult r =
      run_cell(policy_of("none"), policy::ShapingPolicy{});
  EXPECT_LT(r.metrics.bitrate_rel_error, 0.01);
  EXPECT_LT(r.metrics.trajectory_mae_kbps, 1.0);
}

// ---- score_leakage unit conventions.
TEST(AnalysisLeakage, PrecisionConventionsWhenNothingIsDetected) {
  InferenceResult inference;
  FrameEstimate f;
  f.rtp_timestamp = 0;
  f.is_i = false;
  inference.frames.push_back(f);

  GroundTruth truth;
  truth.fps = 30.0;
  truth.frame_is_i = {true};
  const LeakageMetrics m = score_leakage(inference, truth);
  EXPECT_DOUBLE_EQ(m.i_precision, 1.0);  // no false claims made.
  EXPECT_DOUBLE_EQ(m.i_recall, 0.0);     // but the true I was missed.
  EXPECT_DOUBLE_EQ(m.i_f1, 0.0);
}

TEST(AnalysisLeakage, MapsRtpTimestampsBackToFrameIndices) {
  InferenceResult inference;
  for (int k = 0; k < 4; ++k) {
    FrameEstimate f;
    f.rtp_timestamp = static_cast<std::uint32_t>(k * 3000);  // 90kHz/30fps.
    f.is_i = (k == 0 || k == 2);
    inference.frames.push_back(f);
  }
  GroundTruth truth;
  truth.fps = 30.0;
  truth.frame_is_i = {true, false, true, false};
  const LeakageMetrics m = score_leakage(inference, truth);
  EXPECT_DOUBLE_EQ(m.i_precision, 1.0);
  EXPECT_DOUBLE_EQ(m.i_recall, 1.0);
  EXPECT_DOUBLE_EQ(m.i_f1, 1.0);
}

TEST(AnalysisLeakage, GroundTruthUsesContentBytesAndUnjitteredSchedule) {
  const core::Workload workload = core::build_workload(
      video::MotionLevel::kLow, 8, 16, 3, 30.0);
  std::vector<double> send_times;
  send_times.reserve(workload.packets.size());
  for (std::size_t i = 0; i < workload.packets.size(); ++i) {
    send_times.push_back(0.01 * static_cast<double>(i));
  }
  const GroundTruth truth =
      ground_truth_of(workload, workload.packets, send_times, 0.25);
  EXPECT_EQ(truth.gop_size, 8);
  EXPECT_EQ(truth.frame_is_i.size(), workload.stream.frames.size());
  EXPECT_GT(truth.mean_bitrate_bps, 0.0);
  EXPECT_FALSE(truth.trajectory_kbps.empty());
  EXPECT_DOUBLE_EQ(truth.encrypted_packet_fraction, 0.0);
}

}  // namespace
}  // namespace tv::analysis
