#include "core/sweep.hpp"

#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace tv::core {
namespace {

// Small grid that still exercises several axes: 2 motions x 2 policies x
// 2 algorithms = 8 cells, tiny clips so the whole suite stays fast.
SweepSpec small_spec() {
  SweepSpec spec;
  spec.motions = {video::MotionLevel::kLow, video::MotionLevel::kHigh};
  spec.gop_sizes = {8};
  spec.policies = {{policy::Mode::kNone, crypto::Algorithm::kAes256, 0.0},
                   {policy::Mode::kIFrames, crypto::Algorithm::kAes256, 0.0}};
  spec.algorithms = {crypto::Algorithm::kAes128, crypto::Algorithm::kAes256};
  spec.frames = 16;
  spec.repetitions = 3;
  spec.seed = 99;
  return spec;
}

void expect_bitwise_equal(const util::RunningStats& a,
                          const util::RunningStats& b) {
  EXPECT_EQ(a.count(), b.count());
  EXPECT_EQ(a.mean(), b.mean());
  EXPECT_EQ(a.variance(), b.variance());
  EXPECT_EQ(a.min(), b.min());
  EXPECT_EQ(a.max(), b.max());
}

TEST(SweepSpec, CellCountIsAxisProduct) {
  const auto spec = small_spec();
  EXPECT_EQ(spec.cell_count(), 8u);
  EXPECT_EQ(enumerate_cells(spec).size(), 8u);
}

TEST(SweepSpec, ValidateRejectsBadSpecs) {
  auto spec = small_spec();
  spec.motions.clear();
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec = small_spec();
  spec.repetitions = 0;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec = small_spec();
  spec.frames = 4;  // smaller than the GOP.
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  EXPECT_NO_THROW(small_spec().validate());
}

TEST(SweepCells, RowMajorOrderAppliesAlgorithmAxis) {
  const auto cells = enumerate_cells(small_spec());
  // Last axis (algorithm within policy block) varies fastest of the two.
  EXPECT_EQ(cells[0].policy.mode, policy::Mode::kNone);
  EXPECT_EQ(cells[0].policy.algorithm, crypto::Algorithm::kAes128);
  EXPECT_EQ(cells[1].policy.algorithm, crypto::Algorithm::kAes256);
  EXPECT_EQ(cells[2].policy.mode, policy::Mode::kIFrames);
  EXPECT_EQ(cells[0].motion, video::MotionLevel::kLow);
  EXPECT_EQ(cells[4].motion, video::MotionLevel::kHigh);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    EXPECT_EQ(cells[i].index, i);
  }
}

TEST(SweepCells, PerCellSeedsAreDerivedAndDistinct) {
  const auto spec = small_spec();
  const auto cells = enumerate_cells(spec);
  std::set<std::uint64_t> seeds;
  for (const auto& c : cells) {
    EXPECT_EQ(c.seed, util::derive_seed(spec.seed, 0x5eedC311ULL, c.index));
    seeds.insert(c.seed);
  }
  EXPECT_EQ(seeds.size(), cells.size());  // no collisions on this grid.
}

TEST(SweepCells, SharedSeedModeReusesRootSeed) {
  auto spec = small_spec();
  spec.seed_mode = SweepSpec::SeedMode::kShared;
  for (const auto& c : enumerate_cells(spec)) {
    EXPECT_EQ(c.seed, spec.seed);
  }
}

TEST(SweepRunner, FourThreadsBitIdenticalToSerial) {
  const auto spec = small_spec();

  CollectSink serial;
  std::ostringstream serial_jsonl;
  {
    SweepRunner runner;  // no pool.
    JsonlSink jsonl{serial_jsonl};
    runner.run(spec, jsonl);
    runner.run(spec, serial);
  }

  CollectSink pooled;
  std::ostringstream pooled_jsonl;
  {
    util::ThreadPool pool{4};
    SweepRunner runner{&pool};
    JsonlSink jsonl{pooled_jsonl};
    const auto summary = runner.run(spec, jsonl);
    EXPECT_EQ(summary.threads, 4u);
    runner.run(spec, pooled);
  }

  // The streamed export is byte-identical...
  EXPECT_EQ(serial_jsonl.str(), pooled_jsonl.str());

  // ...and so is every in-memory statistic, failure count, and seed.
  ASSERT_EQ(serial.results.size(), pooled.results.size());
  for (std::size_t i = 0; i < serial.results.size(); ++i) {
    const auto& a = serial.results[i];
    const auto& b = pooled.results[i];
    EXPECT_EQ(a.cell.index, b.cell.index);
    EXPECT_EQ(a.cell.seed, b.cell.seed);
    EXPECT_EQ(a.result.completed_repetitions, b.result.completed_repetitions);
    EXPECT_EQ(a.result.failed_repetitions, b.result.failed_repetitions);
    EXPECT_EQ(a.result.failures.size(), b.result.failures.size());
    expect_bitwise_equal(a.result.delay_ms, b.result.delay_ms);
    expect_bitwise_equal(a.result.duration_s, b.result.duration_s);
    expect_bitwise_equal(a.result.power_w, b.result.power_w);
    expect_bitwise_equal(a.result.receiver_psnr_db, b.result.receiver_psnr_db);
    expect_bitwise_equal(a.result.eavesdropper_psnr_db,
                         b.result.eavesdropper_psnr_db);
    expect_bitwise_equal(a.result.receiver_mos, b.result.receiver_mos);
    expect_bitwise_equal(a.result.eavesdropper_mos,
                         b.result.eavesdropper_mos);
  }
}

TEST(SweepRunner, PooledRunExperimentMatchesSerial) {
  const auto workload =
      build_workload(video::MotionLevel::kLow, 8, 16, 7);
  ExperimentSpec spec;
  spec.policy = {policy::Mode::kIFrames, crypto::Algorithm::kAes256, 0.0};
  spec.repetitions = 5;
  spec.seed = 7;
  spec.sensitivity_fraction = default_sensitivity(workload.motion);
  const auto serial = run_experiment(spec, workload);
  util::ThreadPool pool{4};
  const auto pooled = run_experiment(spec, workload, &pool);
  expect_bitwise_equal(serial.delay_ms, pooled.delay_ms);
  expect_bitwise_equal(serial.power_w, pooled.power_w);
  expect_bitwise_equal(serial.receiver_psnr_db, pooled.receiver_psnr_db);
  expect_bitwise_equal(serial.eavesdropper_psnr_db,
                       pooled.eavesdropper_psnr_db);
  EXPECT_EQ(serial.completed_repetitions, pooled.completed_repetitions);
  EXPECT_EQ(serial.total_retransmissions, pooled.total_retransmissions);
}

TEST(WorkloadCache, BuildsOnceAndShares) {
  WorkloadCache cache;
  const auto a = cache.get(video::MotionLevel::kLow, 8, 16, 5);
  const auto b = cache.get(video::MotionLevel::kLow, 8, 16, 5);
  EXPECT_EQ(a.get(), b.get());  // same shared workload, no rebuild.
  EXPECT_EQ(cache.size(), 1u);
  const auto c = cache.get(video::MotionLevel::kLow, 8, 16, 6);
  EXPECT_NE(a.get(), c.get());  // seed participates in the key.
  EXPECT_EQ(cache.size(), 2u);
}

TEST(WorkloadCache, ConcurrentRequestersGetOneBuild) {
  WorkloadCache cache;
  util::ThreadPool pool{4};
  std::vector<std::shared_ptr<const Workload>> got(8);
  pool.parallel_for(got.size(), [&](std::size_t i) {
    got[i] = cache.get(video::MotionLevel::kLow, 8, 16, 11);
  });
  for (const auto& w : got) EXPECT_EQ(w.get(), got[0].get());
  EXPECT_EQ(cache.size(), 1u);
}

TEST(Sinks, FormatsContainTheCells) {
  auto spec = small_spec();
  spec.policies = {{policy::Mode::kIFrames, crypto::Algorithm::kAes256, 0.0}};
  spec.algorithms = {crypto::Algorithm::kAes256};
  spec.motions = {video::MotionLevel::kLow};

  std::ostringstream table, jsonl, csv;
  {
    SweepRunner runner;
    TableSink t{table};
    JsonlSink j{jsonl};
    CsvSink c{csv};
    runner.run(spec, t);
    runner.run(spec, j);
    runner.run(spec, c);
  }
  EXPECT_NE(table.str().find("policy"), std::string::npos);
  EXPECT_NE(table.str().find("I"), std::string::npos);
  EXPECT_NE(jsonl.str().find("\"policy\":\"I\""), std::string::npos);
  EXPECT_NE(jsonl.str().find("\"cell\":0"), std::string::npos);
  // CSV: header row plus one line per cell.
  std::size_t lines = 0;
  for (char ch : csv.str()) lines += ch == '\n';
  EXPECT_EQ(lines, 1 + spec.cell_count());
}

TEST(Roundtrips, MotionDeviceTransportStrings) {
  for (auto m : {video::MotionLevel::kLow, video::MotionLevel::kMedium,
                 video::MotionLevel::kHigh}) {
    EXPECT_EQ(video::motion_from_string(video::to_string(m)), m);
  }
  EXPECT_THROW((void)video::motion_from_string("warp"),
               std::invalid_argument);

  for (const auto& d : {samsung_galaxy_s2(), htc_amaze_4g()}) {
    EXPECT_EQ(device_from_string(d.key).key, d.key);
    EXPECT_EQ(device_from_string(d.name).key, d.key);
  }
  EXPECT_THROW((void)device_from_string("nokia"), std::invalid_argument);

  for (auto t : {Transport::kRtpUdp, Transport::kHttpTcp}) {
    EXPECT_EQ(transport_from_string(transport_key(t)), t);
    EXPECT_EQ(transport_from_string(to_string(t)), t);
  }
  EXPECT_THROW((void)transport_from_string("sctp"), std::invalid_argument);
}

}  // namespace
}  // namespace tv::core
