#include "net/receiver.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "net/fault_injector.hpp"
#include "util/arena.hpp"
#include "util/rng.hpp"

namespace tv::net {
namespace {

std::vector<std::uint8_t> datagram(std::uint16_t seq,
                                   std::uint8_t fill = 0xAB,
                                   std::size_t payload = 32) {
  RtpHeader h;
  h.sequence_number = seq;
  h.timestamp = 90000u + seq;
  auto bytes = h.serialize();
  bytes.insert(bytes.end(), payload, fill);
  return bytes;
}

std::vector<std::int64_t> sequences(const std::vector<ReceivedPacket>& v) {
  std::vector<std::int64_t> out;
  for (const auto& p : v) out.push_back(p.extended_sequence);
  return out;
}

TEST(Receiver, InOrderStreamPassesThrough) {
  Receiver rx;
  for (std::uint16_t s = 0; s < 10; ++s) rx.push(datagram(s));
  const auto got = rx.drain_ready();
  EXPECT_EQ(sequences(got), (std::vector<std::int64_t>{0, 1, 2, 3, 4, 5, 6,
                                                       7, 8, 9}));
  EXPECT_EQ(rx.stats().accepted, 10u);
  EXPECT_EQ(rx.stats().duplicates, 0u);
  EXPECT_EQ(rx.stats().reordered, 0u);
}

TEST(Receiver, ReorderBufferHealsOutOfOrderArrival) {
  Receiver rx;
  for (std::uint16_t s : {0, 1, 3, 2, 5, 4, 6}) {
    rx.push(datagram(static_cast<std::uint16_t>(s)));
  }
  const auto got = rx.flush();
  EXPECT_EQ(sequences(got),
            (std::vector<std::int64_t>{0, 1, 2, 3, 4, 5, 6}));
  EXPECT_EQ(rx.stats().reordered, 2u);  // packets 2 and 4 arrived late.
  EXPECT_EQ(rx.stats().given_up, 0u);
}

TEST(Receiver, DrainHoldsBackAcrossGaps) {
  Receiver rx;
  rx.push(datagram(0));
  rx.push(datagram(2));  // 1 is missing.
  auto got = rx.drain_ready();
  EXPECT_EQ(sequences(got), (std::vector<std::int64_t>{0}));
  rx.push(datagram(1));  // gap fills; 1 and 2 both become releasable.
  got = rx.drain_ready();
  EXPECT_EQ(sequences(got), (std::vector<std::int64_t>{1, 2}));
}

TEST(Receiver, DuplicatesAreSuppressed) {
  Receiver rx;
  rx.push(datagram(0));
  rx.push(datagram(1));
  rx.push(datagram(1));  // duplicate while buffered.
  (void)rx.drain_ready();
  rx.push(datagram(1));  // duplicate after release.
  rx.push(datagram(2));
  const auto got = rx.flush();
  EXPECT_EQ(sequences(got), (std::vector<std::int64_t>{2}));
  EXPECT_EQ(rx.stats().duplicates, 1u);
  EXPECT_EQ(rx.stats().too_late, 1u);
  EXPECT_EQ(rx.stats().accepted, 3u);
}

TEST(Receiver, SequenceWraparoundExtendsMonotonically) {
  Receiver rx;
  // Straddle the 16-bit wrap: 65533..65535, 0..3.
  for (std::uint32_t s = 65533; s <= 65535; ++s) {
    rx.push(datagram(static_cast<std::uint16_t>(s)));
  }
  for (std::uint16_t s = 0; s <= 3; ++s) rx.push(datagram(s));
  const auto got = rx.flush();
  ASSERT_EQ(got.size(), 7u);
  const auto seqs = sequences(got);
  for (std::size_t i = 1; i < seqs.size(); ++i) {
    EXPECT_EQ(seqs[i], seqs[i - 1] + 1);  // strictly consecutive line.
  }
  EXPECT_EQ(seqs.front(), 65533);
  EXPECT_EQ(seqs.back(), 65536 + 3);
  EXPECT_EQ(rx.stats().duplicates, 0u);
}

TEST(Receiver, WraparoundTolleratesReorderingAcrossTheSeam) {
  Receiver rx;
  // Post-wrap packet overtakes the last pre-wrap one.
  rx.push(datagram(65534));
  rx.push(datagram(0));      // two ahead (wrap).
  rx.push(datagram(65535));  // straggler from before the wrap.
  const auto got = rx.flush();
  EXPECT_EQ(sequences(got),
            (std::vector<std::int64_t>{65534, 65535, 65536}));
  EXPECT_EQ(rx.stats().reordered, 1u);
}

TEST(Receiver, DuplicateDetectedAcrossWraparound) {
  Receiver rx;
  rx.push(datagram(65535));
  rx.push(datagram(0));
  rx.push(datagram(0));  // dup of the post-wrap packet.
  const auto got = rx.flush();
  EXPECT_EQ(got.size(), 2u);
  EXPECT_EQ(rx.stats().duplicates, 1u);
}

TEST(Receiver, MarkerBitAndDedupSurviveSequenceWraparound) {
  // The marker bit carries the per-packet encryption flag (§5): it must
  // ride the extended sequence line through the 16-bit wrap, and
  // duplicates on either side of the seam must not resurrect it twice.
  auto marked = [](std::uint16_t seq, bool marker) {
    RtpHeader h;
    h.marker = marker;
    h.sequence_number = seq;
    h.timestamp = 90000u + seq;
    auto bytes = h.serialize();
    bytes.insert(bytes.end(), 32, static_cast<std::uint8_t>(seq));
    return bytes;
  };
  Receiver rx;
  rx.push(marked(65534, true));   // encrypted, pre-wrap.
  rx.push(marked(65535, false));
  rx.push(marked(65534, true));   // duplicate of the pre-wrap packet.
  rx.push(marked(0, true));       // encrypted, post-wrap.
  rx.push(marked(0, true));       // duplicate of the post-wrap packet.
  rx.push(marked(1, false));
  const auto got = rx.flush();
  ASSERT_EQ(got.size(), 4u);
  EXPECT_EQ(sequences(got),
            (std::vector<std::int64_t>{65534, 65535, 65536, 65537}));
  EXPECT_TRUE(got[0].header.marker);
  EXPECT_FALSE(got[1].header.marker);
  EXPECT_TRUE(got[2].header.marker);   // 0 extends to 65536, still marked.
  EXPECT_FALSE(got[3].header.marker);
  EXPECT_EQ(rx.stats().duplicates, 2u);  // one on each side of the seam.
  EXPECT_EQ(rx.stats().accepted, 4u);
}

TEST(Receiver, BoundedBufferGivesUpOnOldGaps) {
  Receiver rx{{.reorder_capacity = 4}};
  rx.push(datagram(0));
  (void)rx.drain_ready();
  // Sequence 1 never arrives; 2..6 overflow the 4-packet buffer.
  for (std::uint16_t s = 2; s <= 6; ++s) rx.push(datagram(s));
  const auto got = rx.drain_ready();
  ASSERT_FALSE(got.empty());
  EXPECT_EQ(got.front().extended_sequence, 2);
  EXPECT_EQ(rx.stats().given_up, 1u);  // gave up on sequence 1.
  const auto rest = rx.flush();
  EXPECT_EQ(got.size() + rest.size(), 5u);
}

TEST(Receiver, MalformedDatagramsNeverThrow) {
  Receiver rx;
  rx.push(std::vector<std::uint8_t>{});             // empty.
  rx.push(std::vector<std::uint8_t>(5, 0xFF));      // runt.
  auto bad_version = datagram(3);
  bad_version[0] = 0x00;
  rx.push(bad_version);
  auto csrc = datagram(4);
  csrc[0] |= 0x03;  // CSRC count the fixed header cannot represent.
  rx.push(csrc);
  rx.push(datagram(5));  // one good packet.
  const auto got = rx.flush();
  EXPECT_EQ(got.size(), 1u);
  EXPECT_EQ(rx.stats().invalid, 4u);
  EXPECT_EQ(rx.stats().accepted, 1u);
}

TEST(Receiver, PayloadSurvivesTheTrip) {
  Receiver rx;
  rx.push(datagram(9, 0x5C, 100));
  const auto got = rx.flush();
  ASSERT_EQ(got.size(), 1u);
  const auto payload = got[0].payload();
  EXPECT_EQ(payload.size(), 100u);
  EXPECT_TRUE(std::all_of(payload.begin(), payload.end(),
                          [](std::uint8_t b) { return b == 0x5C; }));
  EXPECT_EQ(got[0].header.timestamp, 90000u + 9u);
}

// --- FaultInjector-driven robustness -----------------------------------

util::Arena& test_arena() {
  static util::Arena arena;  // lives for the whole test binary.
  return arena;
}

std::vector<VideoPacket> make_stream(std::size_t n) {
  std::vector<VideoPacket> packets;
  for (std::size_t i = 0; i < n; ++i) {
    VideoPacket p;
    p.sequence = static_cast<std::uint16_t>(i);
    p.timestamp = static_cast<std::uint32_t>(3000 * i);
    p.allocate_payload(test_arena(), 64, static_cast<std::uint8_t>(i));
    packets.push_back(std::move(p));
  }
  return packets;
}

TEST(FaultInjector, DeterministicPerSeed) {
  FaultPlan plan;
  plan.drop_prob = 0.1;
  plan.corrupt_header_prob = 0.1;
  plan.corrupt_payload_prob = 0.2;
  plan.truncate_prob = 0.1;
  plan.duplicate_prob = 0.1;
  plan.reorder_prob = 0.2;
  const auto stream = make_stream(200);
  const auto a = FaultInjector{plan, 77}.apply(stream);
  const auto b = FaultInjector{plan, 77}.apply(stream);
  EXPECT_EQ(a.datagrams, b.datagrams);
  EXPECT_EQ(a.origins, b.origins);
  ASSERT_EQ(a.faults.size(), b.faults.size());
  for (std::size_t i = 0; i < a.faults.size(); ++i) {
    EXPECT_EQ(a.faults[i].kind, b.faults[i].kind);
    EXPECT_EQ(a.faults[i].packet_index, b.faults[i].packet_index);
    EXPECT_EQ(a.faults[i].detail, b.faults[i].detail);
  }
  const auto c = FaultInjector{plan, 78}.apply(stream);
  EXPECT_NE(a.datagrams, c.datagrams);
}

TEST(FaultInjector, CleanPlanIsIdentity) {
  const auto stream = make_stream(50);
  const auto r = FaultInjector{FaultPlan{}, 1}.apply(stream);
  ASSERT_EQ(r.datagrams.size(), 50u);
  EXPECT_TRUE(r.faults.empty());
  for (std::size_t i = 0; i < r.datagrams.size(); ++i) {
    EXPECT_EQ(r.origins[i], i);
    const auto h = RtpHeader::parse(r.datagrams[i]);
    EXPECT_EQ(h.sequence_number, i);
  }
}

TEST(FaultInjector, ReceiverSurvivesHeavyFaultLoadAndKeepsOrder) {
  FaultPlan plan;
  plan.drop_prob = 0.05;
  plan.corrupt_header_prob = 0.1;
  plan.truncate_prob = 0.1;
  plan.duplicate_prob = 0.15;
  plan.reorder_prob = 0.25;
  const auto stream = make_stream(300);
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const auto damaged = FaultInjector{plan, seed}.apply(stream);
    Receiver rx;
    std::vector<ReceivedPacket> got;
    for (const auto& d : damaged.datagrams) {
      rx.push(d);
      for (auto& p : rx.drain_ready()) got.push_back(std::move(p));
    }
    for (auto& p : rx.flush()) got.push_back(std::move(p));
    // Whatever survives must come out strictly increasing and unique.
    for (std::size_t i = 1; i < got.size(); ++i) {
      EXPECT_GT(got[i].extended_sequence, got[i - 1].extended_sequence);
    }
    EXPECT_EQ(rx.stats().datagrams, damaged.datagrams.size());
    EXPECT_LE(got.size(), stream.size());
    EXPECT_GT(got.size(), stream.size() / 2);  // most of it survives.
  }
}

TEST(Receiver, CorruptedThenCleanCopyOfSameSequenceDedupsOnFirstArrival) {
  // The channel can deliver a bit-damaged copy of a packet and then a
  // clean retransmission of the same sequence number.  Dedup is by
  // sequence (RTP has no payload checksum), so the first-arrived —
  // corrupted — copy wins and the clean one counts as a duplicate.  The
  // invariant under test: the same wire sequence never yields two
  // packets downstream.
  Receiver rx;
  rx.push(datagram(0));
  rx.push(datagram(1, /*fill=*/0x00));  // corrupted payload arrives first.
  rx.push(datagram(1, /*fill=*/0xAB));  // clean copy arrives second.
  rx.push(datagram(2));
  const auto got = rx.flush();
  ASSERT_EQ(sequences(got), (std::vector<std::int64_t>{0, 1, 2}));
  EXPECT_EQ(rx.stats().duplicates, 1u);
  // First arrival wins: the payload is the corrupted fill.
  EXPECT_EQ(got[1].payload().front(), 0x00);
  EXPECT_EQ(got[1].payload().back(), 0x00);
}

TEST(FaultInjector, ValidatesPlan) {
  FaultPlan plan;
  plan.drop_prob = 1.5;
  EXPECT_THROW((void)FaultInjector(plan, 1), std::invalid_argument);
  plan.drop_prob = 0.0;
  plan.max_bit_flips = 0;
  EXPECT_THROW((void)FaultInjector(plan, 1), std::invalid_argument);
}

}  // namespace
}  // namespace tv::net
