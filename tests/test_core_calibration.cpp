#include "core/calibration.hpp"

#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "core/pipeline.hpp"
#include "util/arena.hpp"

namespace tv::core {
namespace {

// One shared small workload; building it is the expensive part.
const Workload& workload() {
  static const Workload w =
      build_workload(video::MotionLevel::kMedium, 15, 60, 77);
  return w;
}

struct Calibrated {
  TransferResult transfer;
  TrafficCalibration traffic;
  ServiceCalibration service;
};

Calibrated calibrate(PipelineConfig config) {
  Calibrated c;
  c.transfer = simulate_transfer(config, workload().packets, 2024);
  c.traffic = calibrate_traffic(workload().packets, c.transfer.timings,
                                workload().fps);
  c.service = calibrate_service(workload().packets, c.transfer.timings,
                                config, c.traffic);
  return c;
}

PipelineConfig config() {
  PipelineConfig c;
  c.device = samsung_galaxy_s2();
  return c;
}

TEST(CalibrateTraffic, CountsAndFractionsMatchTheStream) {
  const auto c = calibrate(config());
  std::size_t i_packets = 0;
  for (const auto& p : workload().packets) i_packets += p.is_i_frame ? 1 : 0;
  EXPECT_EQ(c.traffic.packet_count, workload().packets.size());
  EXPECT_NEAR(c.traffic.p_i,
              static_cast<double>(i_packets) / workload().packets.size(),
              1e-12);
  EXPECT_NEAR(c.traffic.clip_duration_s, 2.0, 1e-9);  // 60 frames / 30 fps.
  EXPECT_GT(c.traffic.mean_i_packets_per_frame, 3.0);
  EXPECT_GE(c.traffic.mean_p_packets_per_frame, 1.0);
  EXPECT_EQ(c.traffic.total_payload_bytes, workload().stream.total_bytes());
}

TEST(CalibrateTraffic, MmppSeparatesBurstAndIdleRates) {
  const auto c = calibrate(config());
  // I-frame fragments stream at the read rate (>1000/s); P traffic is
  // paced by the frame rate (tens/s).
  EXPECT_GT(c.traffic.mmpp.lambda1, 20.0 * c.traffic.mmpp.lambda2);
  EXPECT_GT(c.traffic.mmpp.r12, c.traffic.mmpp.r21);
}

TEST(CalibrateService, TransmissionTimesTrackPacketSizes) {
  const auto c = calibrate(config());
  // I-frame packets are full MTU; P packets are smaller on average.
  EXPECT_GT(c.service.tx_i_mean, c.service.tx_p_mean);
  EXPECT_GT(c.service.tx_i_mean, 1e-4);
  EXPECT_LT(c.service.tx_i_mean, 0.1);
}

TEST(CalibrateService, JitterStaysInMinorVariationRegime) {
  const auto c = calibrate(config());
  EXPECT_LE(c.service.tx_i_stddev, 0.25 * c.service.tx_i_mean + 1e-12);
  EXPECT_LE(c.service.tx_p_stddev, 0.25 * c.service.tx_p_mean + 1e-12);
}

TEST(CalibrateService, FallsBackToDeviceModelWithoutEncryptedSamples) {
  // The probe transfer was unencrypted, so encryption times must come from
  // the device profile at typical payloads.
  const auto cfg = config();
  const auto c = calibrate(cfg);
  const double expected_i = cfg.device.encryption_seconds(
      cfg.algorithm, static_cast<std::size_t>(c.traffic.mean_i_payload));
  EXPECT_NEAR(c.service.enc_i_mean, expected_i, 1e-12);
  EXPECT_GT(c.service.enc_i_mean, c.service.enc_p_mean);
}

TEST(CalibrateService, UsesMeasuredEncryptionTimesWhenPresent) {
  // Encrypt everything, transfer, and calibrate: the measured means must
  // be near the device model's deterministic cost.
  util::Arena arena;
  auto packets = net::clone_packets(workload().packets, arena);
  std::vector<bool> all(packets.size(), true);
  const auto cipher =
      crypto::make_cipher_from_seed(crypto::Algorithm::kAes256, 5);
  std::vector<std::uint8_t> iv(cipher->block_size(), 3);
  net::encrypt_selected(packets, all, *cipher, iv);
  const auto cfg = config();
  const auto transfer = simulate_transfer(cfg, packets, 31);
  const auto traffic = calibrate_traffic(packets, transfer.timings, 30.0);
  const auto service =
      calibrate_service(packets, transfer.timings, cfg, traffic);
  const double model_i = cfg.device.encryption_seconds(
      crypto::Algorithm::kAes256,
      static_cast<std::size_t>(traffic.mean_i_payload));
  EXPECT_NEAR(service.enc_i_mean, model_i, 0.1 * model_i);
}

TEST(ServiceParameters, AssemblesPolicyFractions) {
  const auto c = calibrate(config());
  const auto sp = service_parameters(c.traffic, c.service, 1.0, 0.25);
  EXPECT_DOUBLE_EQ(sp.q_i, 1.0);
  EXPECT_DOUBLE_EQ(sp.q_p, 0.25);
  EXPECT_DOUBLE_EQ(sp.p_i, c.traffic.p_i);
  EXPECT_DOUBLE_EQ(sp.tx_i_mean, c.service.tx_i_mean);
  // And it must construct a valid analytic service model.
  const auto model = queueing::ServiceTimeModel::from_parameters(sp);
  EXPECT_GT(model.mean(), 0.0);
}

TEST(Calibration, SamplePrefixLimitsOnlyTimingEstimates) {
  const auto cfg = config();
  const auto transfer = simulate_transfer(cfg, workload().packets, 2024);
  const auto full = calibrate_traffic(workload().packets, transfer.timings,
                                      30.0, 0);
  const auto prefix = calibrate_traffic(workload().packets, transfer.timings,
                                        30.0, workload().packets.size() / 2);
  // Stream shape facts use the whole file either way.
  EXPECT_EQ(prefix.total_payload_bytes, full.total_payload_bytes);
  EXPECT_EQ(prefix.packet_count, full.packet_count);
  // The MMPP fit from half the trace still lands in the same regime.
  EXPECT_NEAR(prefix.mmpp.lambda1, full.mmpp.lambda1,
              0.5 * full.mmpp.lambda1);
}

TEST(Calibration, ValidatesInputSizes) {
  const auto transfer = simulate_transfer(config(), workload().packets, 1);
  auto timings = transfer.timings;
  timings.pop_back();
  EXPECT_THROW((void)calibrate_traffic(workload().packets, timings, 30.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace tv::core
