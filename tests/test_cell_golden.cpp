// Golden-file regression for the cell capacity sweep's JSONL output.
//
// The fixture tests/data/cell_golden.jsonl pins the byte-exact output of a
// small but representative capacity sweep — heterogeneous flows, a
// background class, fading, mixed deadlines, quality evaluation on.
// CellJsonlSink prints at %.17g and the engine's determinism contract
// makes the bytes independent of thread count, so any difference is a real
// behaviour change (contention, scheduling, seed derivation, statistics or
// serialization) and must be reviewed, not absorbed.  After an intentional
// change, regenerate with
//
//     TV_UPDATE_GOLDEN=1 ./build/tests/tv_cell_tests
//         --gtest_filter='CellGolden.*'   (one command line)
//
// and inspect the fixture diff.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "cell/cell.hpp"

#ifndef TV_TEST_DATA_DIR
#error "TV_TEST_DATA_DIR must point at tests/data"
#endif

namespace tv::cell {
namespace {

// The pinned sweep: three population sizes over two motion levels, two
// policy shapes x two ciphers, background cross-traffic, block fading and
// a deadline mix tight enough to exercise the scheduler.  Do not edit
// casually — the fixture encodes these exact axes.
CapacitySpec golden_spec() {
  CapacitySpec spec;
  spec.flow_counts = {1, 2, 4};
  spec.base.motions = {video::MotionLevel::kLow, video::MotionLevel::kHigh};
  spec.base.gop_sizes = {10};
  spec.base.policies = {
      {policy::Mode::kIFrames, crypto::Algorithm::kAes256, 0.0},
      {policy::Mode::kAll, crypto::Algorithm::kAes256, 0.0}};
  spec.base.algorithms = {crypto::Algorithm::kAes128,
                          crypto::Algorithm::kTripleDes};
  spec.base.deadlines_s = {2.0, 0.0};
  spec.base.frames = 20;
  spec.base.repetitions = 2;
  spec.base.seed = 61;
  spec.base.background_stations = 2;
  spec.base.channel_error_prob = 0.02;
  spec.base.fade_prob = 0.25;
  spec.base.mean_fade_reps = 2.0;
  spec.base.fade_error_prob = 0.3;
  spec.base.evaluate_quality = true;
  return spec;
}

std::string run_golden_sweep() {
  std::ostringstream out;
  CellJsonlSink sink{out};
  CellRunner runner;
  (void)runner.run(golden_spec(), sink);
  return out.str();
}

TEST(CellGolden, JsonlOutputMatchesFixture) {
  const std::string path =
      std::string{TV_TEST_DATA_DIR} + "/cell_golden.jsonl";
  const std::string actual = run_golden_sweep();
  ASSERT_FALSE(actual.empty());

  if (std::getenv("TV_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out{path, std::ios::binary};
    ASSERT_TRUE(out) << "cannot write " << path;
    out << actual;
    GTEST_SKIP() << "fixture regenerated at " << path;
  }

  std::ifstream in{path, std::ios::binary};
  ASSERT_TRUE(in) << "missing fixture " << path
                  << "; regenerate with TV_UPDATE_GOLDEN=1";
  std::ostringstream expected;
  expected << in.rdbuf();
  if (actual == expected.str()) return;

  // Narrow the report to the first diverging line.
  std::istringstream a{actual}, e{expected.str()};
  std::string al, el;
  int line = 1;
  while (std::getline(a, al) && std::getline(e, el) && al == el) ++line;
  FAIL() << "cell JSONL diverged from " << path << " at line " << line
         << "\n  expected: " << el << "\n  actual:   " << al
         << "\nIf the change is intentional, regenerate the fixture with "
            "TV_UPDATE_GOLDEN=1 and review the diff.";
}

}  // namespace
}  // namespace tv::cell
