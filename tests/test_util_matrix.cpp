#include "util/matrix.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace tv::util {
namespace {

TEST(Matrix, InitializerListAndAccess) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
  EXPECT_THROW((Matrix{{1.0}, {1.0, 2.0}}), std::invalid_argument);
}

TEST(Matrix, ArithmeticOperators) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  Matrix b{{5.0, 6.0}, {7.0, 8.0}};
  const Matrix sum = a + b;
  EXPECT_DOUBLE_EQ(sum(1, 1), 12.0);
  const Matrix diff = b - a;
  EXPECT_DOUBLE_EQ(diff(0, 0), 4.0);
  const Matrix scaled = a * 2.0;
  EXPECT_DOUBLE_EQ(scaled(1, 0), 6.0);
  const Matrix prod = a * b;
  EXPECT_DOUBLE_EQ(prod(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(prod(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(prod(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(prod(1, 1), 50.0);
}

TEST(Matrix, SolveRecoversKnownSolution) {
  const Matrix a{{2.0, 1.0, -1.0}, {-3.0, -1.0, 2.0}, {-2.0, 1.0, 2.0}};
  const Vector b = {8.0, -11.0, -3.0};
  const Vector x = solve(a, b);
  EXPECT_NEAR(x[0], 2.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
  EXPECT_NEAR(x[2], -1.0, 1e-12);
}

TEST(Matrix, SolveThrowsOnSingular) {
  const Matrix a{{1.0, 2.0}, {2.0, 4.0}};
  EXPECT_THROW((void)solve(a, {1.0, 2.0}), std::runtime_error);
}

TEST(Matrix, SolveLeftMatchesRowSystem) {
  const Matrix a{{4.0, 1.0}, {2.0, 3.0}};
  const Vector b = {10.0, 13.0};
  const Vector x = solve_left(a, b);  // x A = b.
  EXPECT_NEAR(x[0] * a(0, 0) + x[1] * a(1, 0), b[0], 1e-12);
  EXPECT_NEAR(x[0] * a(0, 1) + x[1] * a(1, 1), b[1], 1e-12);
}

TEST(Matrix, InverseTimesSelfIsIdentity) {
  const Matrix a{{3.0, 1.0, 2.0}, {0.0, 4.0, 1.0}, {2.0, -1.0, 5.0}};
  const Matrix inv = inverse(a);
  const Matrix id = a * inv;
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_NEAR(id(i, j), i == j ? 1.0 : 0.0, 1e-12);
    }
  }
}

TEST(Matrix, ExpmOfZeroIsIdentity) {
  const Matrix z(3, 3);
  const Matrix e = expm(z);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_NEAR(e(i, j), i == j ? 1.0 : 0.0, 1e-14);
    }
  }
}

TEST(Matrix, ExpmDiagonalIsElementwiseExp) {
  Matrix d(2, 2);
  d(0, 0) = 1.0;
  d(1, 1) = -2.0;
  const Matrix e = expm(d);
  EXPECT_NEAR(e(0, 0), std::exp(1.0), 1e-12);
  EXPECT_NEAR(e(1, 1), std::exp(-2.0), 1e-12);
  EXPECT_NEAR(e(0, 1), 0.0, 1e-14);
}

TEST(Matrix, ExpmOfGeneratorIsStochastic) {
  // exp(Q t) of a CTMC generator must have rows summing to 1.
  const Matrix q{{-2.0, 2.0}, {5.0, -5.0}};
  const Matrix p = expm(q * 0.37);
  EXPECT_NEAR(p(0, 0) + p(0, 1), 1.0, 1e-12);
  EXPECT_NEAR(p(1, 0) + p(1, 1), 1.0, 1e-12);
  EXPECT_GE(p(0, 0), 0.0);
  EXPECT_GE(p(1, 0), 0.0);
}

TEST(Matrix, ExpmMatchesClosedForm2x2) {
  // For Q = [[-a, a], [b, -b]], exp(Qt) has the classic closed form.
  const double a = 3.0;
  const double b = 1.5;
  const double t = 0.8;
  const Matrix p = expm(Matrix{{-a, a}, {b, -b}} * t);
  const double s = a + b;
  const double decay = std::exp(-s * t);
  EXPECT_NEAR(p(0, 0), (b + a * decay) / s, 1e-12);
  EXPECT_NEAR(p(0, 1), (a - a * decay) / s, 1e-12);
  EXPECT_NEAR(p(1, 0), (b - b * decay) / s, 1e-12);
}

TEST(Matrix, CtmcStationarySatisfiesBalance) {
  const Matrix q{{-2.0, 2.0}, {6.0, -6.0}};
  const Vector pi = ctmc_stationary(q);
  EXPECT_NEAR(pi[0], 0.75, 1e-12);
  EXPECT_NEAR(pi[1], 0.25, 1e-12);
  const Vector zero = mul(pi, q);
  EXPECT_NEAR(zero[0], 0.0, 1e-12);
}

TEST(Matrix, DtmcStationaryOfDoublyStochasticIsUniform) {
  const Matrix p{{0.5, 0.5}, {0.5, 0.5}};
  const Vector pi = dtmc_stationary(p);
  EXPECT_NEAR(pi[0], 0.5, 1e-12);
  EXPECT_NEAR(pi[1], 0.5, 1e-12);
}

TEST(Matrix, VectorHelpers) {
  const Vector v = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(sum(v), 6.0);
  EXPECT_DOUBLE_EQ(dot(v, v), 14.0);
  const Matrix m{{1.0, 0.0}, {0.0, 2.0}, {1.0, 1.0}};
  const Vector vm = mul(v, m);
  EXPECT_DOUBLE_EQ(vm[0], 4.0);
  EXPECT_DOUBLE_EQ(vm[1], 7.0);
  const Vector mv = mul(m, Vector{2.0, 3.0});
  EXPECT_DOUBLE_EQ(mv[0], 2.0);
  EXPECT_DOUBLE_EQ(mv[2], 5.0);
}

}  // namespace
}  // namespace tv::util
