// Byte-stability golden for the live loopback testbed.
//
// The fixture tests/data/live_loopback_golden.jsonl pins, byte for byte,
// the full observable output of one stochastic loopback run: a summary
// line with every report statistic (PSNRs at %.17g) followed by the
// complete per-packet trace JSONL of all three roles.  The companion
// fixture live_loopback_golden.pcap pins the eavesdropper's capture at
// the wire-byte level (Ethernet/IP/UDP/RTP framing included).
//
// Together they guarantee that ownership/lifetime refactors of the
// packet path (arena buffers, wire views, pooled datagrams) change no
// observable byte: same RNG draw sequence, same payload bytes on the
// wire, same trace, same PSNRs.  After an intentional behaviour change,
// regenerate with
//
//     TV_UPDATE_GOLDEN=1 ./build/tests/tv_live_tests
//         --gtest_filter='LiveGolden.*'   (one command line)
//
// and review the fixture diff.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "live/loopback.hpp"
#include "policy/policy.hpp"

#ifndef TV_TEST_DATA_DIR
#error "TV_TEST_DATA_DIR must point at tests/data"
#endif

namespace tv::live {
namespace {

LoopbackConfig golden_config(core::TraceSink* trace,
                             const std::string& pcap_path) {
  LoopbackConfig config;
  config.motion = video::MotionLevel::kMedium;
  config.gop_size = 16;
  config.frames = 24;
  config.policy =
      policy::policy_from_string("I", crypto::Algorithm::kAes128);
  config.seed = 3;
  config.stochastic = true;

  core::ChannelModel channel;
  channel.receiver.mean_loss_prob = 0.05;
  channel.receiver.mean_burst_length = 3.0;
  channel.eavesdropper.mean_loss_prob =
      config.pipeline.eavesdropper_loss_prob;
  channel.eavesdropper.mean_burst_length = 1.0;
  config.pipeline.channel = channel;

  net::FaultPlan faults;
  faults.drop_prob = 0.02;
  faults.corrupt_payload_prob = 0.02;
  faults.duplicate_prob = 0.02;
  faults.reorder_prob = 0.05;
  config.faults = faults;

  config.pcap_path = pcap_path;
  config.trace = trace;
  return config;
}

std::string summary_line(const LoopbackReport& r) {
  char buf[512];
  std::snprintf(
      buf, sizeof buf,
      "{\"packets\": %zu, \"encrypted\": %zu, "
      "\"recv_psnr\": [%.17g, %.17g, %.17g], "
      "\"eaves_psnr\": [%.17g, %.17g, %.17g], "
      "\"proxy\": [%zu, %zu, %zu, %zu, %zu], "
      "\"receiver\": [%zu, %zu, %zu, %zu], "
      "\"tap\": [%zu, %zu], \"pcap_clamped\": %zu}",
      r.packet_count, r.encryption.encrypted_packets,
      r.live_receiver_psnr_db, r.memory_receiver_psnr_db,
      r.predicted_receiver_psnr_db, r.live_eavesdropper_psnr_db,
      r.memory_eavesdropper_psnr_db, r.predicted_eavesdropper_psnr_db,
      r.proxy.heard, r.proxy.forwarded, r.proxy.dropped, r.proxy.duplicated,
      r.proxy.reordered, r.receiver.accepted, r.receiver.duplicates,
      r.receiver.reordered, r.receiver.invalid, r.tap.heard, r.tap.captured,
      r.pcap_clamped);
  return std::string{buf};
}

std::string read_file(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  if (!in) return {};
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void report_first_diff(const std::string& actual, const std::string& expected,
                       const std::string& path) {
  std::istringstream a{actual}, e{expected};
  std::string al, el;
  int line = 1;
  while (std::getline(a, al) && std::getline(e, el) && al == el) ++line;
  FAIL() << "live loopback output diverged from " << path << " at line "
         << line << "\n  expected: " << el << "\n  actual:   " << al
         << "\nIf the change is intentional, regenerate the fixtures with "
            "TV_UPDATE_GOLDEN=1 and review the diff.";
}

TEST(LiveGolden, TraceAndCaptureMatchFixtures) {
  const std::string data_dir{TV_TEST_DATA_DIR};
  const std::string trace_path = data_dir + "/live_loopback_golden.jsonl";
  const std::string pcap_golden = data_dir + "/live_loopback_golden.pcap";
  const std::string pcap_tmp =
      testing::TempDir() + "tv_live_golden_capture.pcap";

  std::ostringstream trace_out;
  core::JsonlTraceSink trace{trace_out};
  const LoopbackConfig config = golden_config(&trace, pcap_tmp);
  const LoopbackReport report = run_loopback(config);

  const std::string actual = summary_line(report) + "\n" + trace_out.str();
  const std::string actual_pcap = read_file(pcap_tmp);
  std::remove(pcap_tmp.c_str());
  ASSERT_FALSE(actual.empty());
  ASSERT_FALSE(actual_pcap.empty());

  if (std::getenv("TV_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out{trace_path, std::ios::binary};
    ASSERT_TRUE(out) << "cannot write " << trace_path;
    out << actual;
    std::ofstream pout{pcap_golden, std::ios::binary};
    ASSERT_TRUE(pout) << "cannot write " << pcap_golden;
    pout << actual_pcap;
    GTEST_SKIP() << "fixtures regenerated under " << data_dir;
  }

  const std::string expected = read_file(trace_path);
  ASSERT_FALSE(expected.empty())
      << "missing fixture " << trace_path
      << "; regenerate with TV_UPDATE_GOLDEN=1";
  if (actual != expected) report_first_diff(actual, expected, trace_path);

  const std::string expected_pcap = read_file(pcap_golden);
  ASSERT_FALSE(expected_pcap.empty())
      << "missing fixture " << pcap_golden
      << "; regenerate with TV_UPDATE_GOLDEN=1";
  EXPECT_EQ(actual_pcap, expected_pcap)
      << "eavesdropper pcap bytes diverged from " << pcap_golden;
}

}  // namespace
}  // namespace tv::live
