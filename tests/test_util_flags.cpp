#include "util/flags.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace tv::util {
namespace {

Flags parse(std::vector<const char*> argv) {
  argv.insert(argv.begin(), "prog");
  return Flags::parse(static_cast<int>(argv.size()),
                      const_cast<char**>(argv.data()));
}

TEST(Flags, SplitsOptionsAndPositionals) {
  const auto f = parse({"--motion=high", "clip.y4m", "--verbose", "extra"});
  EXPECT_TRUE(f.has("motion"));
  EXPECT_EQ(f.get("motion", ""), "high");
  EXPECT_EQ(f.get("verbose", ""), "1");  // bare flag stored as "1".
  EXPECT_EQ(f.positional(), (std::vector<std::string>{"clip.y4m", "extra"}));
  EXPECT_FALSE(f.has("absent"));
  EXPECT_EQ(f.get("absent", "fallback"), "fallback");
}

TEST(Flags, TypedAccessors) {
  const auto f = parse({"--reps=20", "--seed=2013", "--loss=0.25",
                        "--quality=off"});
  EXPECT_EQ(f.get_int("reps", 0), 20);
  EXPECT_EQ(f.get_uint64("seed", 0), 2013u);
  EXPECT_DOUBLE_EQ(f.get_double("loss", 0.0), 0.25);
  EXPECT_FALSE(f.get_bool("quality", true));
  // Fallbacks when absent.
  EXPECT_EQ(f.get_int("missing", 7), 7);
  EXPECT_DOUBLE_EQ(f.get_double("missing", 1.5), 1.5);
  EXPECT_TRUE(f.get_bool("missing", true));
}

TEST(Flags, InvalidIntegerReportsFlagAndValue) {
  const auto f = parse({"--reps=abc"});
  try {
    (void)f.get_int("reps", 0);
    FAIL() << "expected FlagError";
  } catch (const FlagError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("--reps"), std::string::npos) << what;
    EXPECT_NE(what.find("'abc'"), std::string::npos) << what;
  }
}

TEST(Flags, RejectsTrailingGarbageAndPartialNumbers) {
  const auto f = parse({"--reps=12x", "--loss=0.5y", "--seed=-3"});
  EXPECT_THROW((void)f.get_int("reps", 0), FlagError);
  EXPECT_THROW((void)f.get_double("loss", 0.0), FlagError);
  EXPECT_THROW((void)f.get_uint64("seed", 0), FlagError);
}

TEST(Flags, BoolAcceptsAllSpellings) {
  const auto f = parse({"--a=1", "--b=true", "--c=on", "--d=yes", "--e=0",
                        "--f=false", "--g=off", "--h=no", "--i=maybe"});
  for (const char* key : {"a", "b", "c", "d"}) {
    EXPECT_TRUE(f.get_bool(key, false)) << key;
  }
  for (const char* key : {"e", "f", "g", "h"}) {
    EXPECT_FALSE(f.get_bool(key, true)) << key;
  }
  EXPECT_THROW((void)f.get_bool("i", false), FlagError);
}

TEST(Flags, ListsSplitOnCommas) {
  const auto f = parse({"--motions=low,high", "--gops=30,50", "--one=x"});
  EXPECT_EQ(f.get_list("motions"), (std::vector<std::string>{"low", "high"}));
  EXPECT_EQ(f.get_int_list("gops"), (std::vector<int>{30, 50}));
  EXPECT_EQ(f.get_list("one"), (std::vector<std::string>{"x"}));
  EXPECT_TRUE(f.get_list("absent").empty());
  EXPECT_THROW((void)f.get_int_list("motions"), FlagError);
}

TEST(Flags, RejectsDuplicateOptions) {
  try {
    (void)parse({"--seed=1", "--seed=2"});
    FAIL() << "expected FlagError";
  } catch (const FlagError& e) {
    EXPECT_NE(std::string(e.what()).find("--seed"), std::string::npos)
        << e.what();
  }
  // Distinct keys are of course fine.
  EXPECT_NO_THROW((void)parse({"--seed=1", "--reps=2"}));
}

TEST(Flags, NegativeNumbersAreValuesNotFlags) {
  const auto f = parse({"--loss=-0.25", "-5", "-.5", "-0", "x"});
  EXPECT_DOUBLE_EQ(f.get_double("loss", 0.0), -0.25);
  // Single-dash numeric tokens are positionals, not malformed options.
  EXPECT_EQ(f.positional(),
            (std::vector<std::string>{"-5", "-.5", "-0", "x"}));
  // A single-dash word is a typo'd option, not a positional.
  EXPECT_THROW((void)parse({"-threads"}), FlagError);
}

TEST(Flags, DoubleListParsesAndValidates) {
  const auto f = parse({"--lambdas=2400,160.5,-3", "--bad=1,x"});
  EXPECT_EQ(f.get_double_list("lambdas"),
            (std::vector<double>{2400.0, 160.5, -3.0}));
  EXPECT_TRUE(f.get_double_list("absent").empty());
  EXPECT_THROW((void)f.get_double_list("bad"), FlagError);
}

TEST(Flags, CheckKnownNamesTheOffender) {
  const auto f = parse({"--reps=3", "--typo=1"});
  try {
    f.check_known({"reps", "seed"});
    FAIL() << "expected FlagError";
  } catch (const FlagError& e) {
    EXPECT_NE(std::string(e.what()).find("--typo"), std::string::npos);
  }
  EXPECT_NO_THROW(f.check_known({"reps", "typo"}));
}

TEST(FlagSet, HelpTextListsEveryRegisteredFlagAligned) {
  FlagSet fs{"prog demo", "Demo command for the help generator."};
  fs.flag("reps", "N", "repetition count")
      .flag("format", "table|jsonl", "output format")
      .flag("fast", "", "boolean switch");
  const std::string help = fs.help_text();
  EXPECT_NE(help.find("usage: prog demo [options]"), std::string::npos);
  EXPECT_NE(help.find("Demo command for the help generator."),
            std::string::npos);
  EXPECT_NE(help.find("--reps=N"), std::string::npos);
  EXPECT_NE(help.find("--format=table|jsonl"), std::string::npos);
  // A boolean switch is spelled without a value hint.
  EXPECT_NE(help.find("--fast "), std::string::npos);
  EXPECT_EQ(help.find("--fast="), std::string::npos);
  // The implicit --help line is always present and listed last.
  const auto help_pos = help.find("--help");
  ASSERT_NE(help_pos, std::string::npos);
  EXPECT_GT(help_pos, help.find("--fast"));
  // Help columns align: every flag line's description starts at the same
  // column (two spaces past the widest spelling).
  EXPECT_NE(help.find("--reps=N              repetition count"),
            std::string::npos)
      << help;
}

TEST(FlagSet, CheckAcceptsRegisteredFlagsAndImplicitHelp) {
  FlagSet fs{"prog demo", "Demo."};
  fs.flag("reps", "N", "repetition count");
  EXPECT_NO_THROW(fs.check(parse({"--reps=3"})));
  EXPECT_NO_THROW(fs.check(parse({"--help"})));
  EXPECT_NO_THROW(fs.check(parse({})));
}

TEST(FlagSet, CheckNamesTheOffenderAndPointsAtHelp) {
  FlagSet fs{"prog demo", "Demo."};
  fs.flag("reps", "N", "repetition count");
  try {
    fs.check(parse({"--reps=3", "--typo=1"}));
    FAIL() << "expected FlagError";
  } catch (const FlagError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("--typo"), std::string::npos);
    EXPECT_NE(what.find("prog demo --help"), std::string::npos);
  }
}

}  // namespace
}  // namespace tv::util
