#include "crypto/des.hpp"

#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "util/rng.hpp"

namespace tv::crypto {
namespace {

// Classic worked example (Ronald L. Rivest's / standard textbook vector):
// key 133457799BBCDFF1, plaintext 0123456789ABCDEF -> 85E813540F0AB405.
const std::array<std::uint8_t, 8> kKey = {0x13, 0x34, 0x57, 0x79,
                                          0x9B, 0xBC, 0xDF, 0xF1};
const std::array<std::uint8_t, 8> kPlain = {0x01, 0x23, 0x45, 0x67,
                                            0x89, 0xAB, 0xCD, 0xEF};
const std::array<std::uint8_t, 8> kCipher = {0x85, 0xE8, 0x13, 0x54,
                                             0x0F, 0x0A, 0xB4, 0x05};

TEST(Des, KnownVectorEncrypts) {
  const Des des{kKey};
  std::array<std::uint8_t, 8> out{};
  des.encrypt_block(kPlain, out);
  EXPECT_EQ(out, kCipher);
}

TEST(Des, KnownVectorDecrypts) {
  const Des des{kKey};
  std::array<std::uint8_t, 8> out{};
  des.decrypt_block(kCipher, out);
  EXPECT_EQ(out, kPlain);
}

TEST(Des, RivestRecurrenceFirstSteps) {
  // X_{i+1} = DES(X_i, X_i) starting from 9474B8E8C73BCA7D reaches
  // 8DA744E0C94E5E17 after one step (R. Rivest's DES validation chain).
  const std::array<std::uint8_t, 8> x0 = {0x94, 0x74, 0xB8, 0xE8,
                                          0xC7, 0x3B, 0xCA, 0x7D};
  const Des des{x0};
  std::array<std::uint8_t, 8> x1{};
  des.encrypt_block(x0, x1);
  const std::array<std::uint8_t, 8> expected = {0x8D, 0xA7, 0x44, 0xE0,
                                                0xC9, 0x4E, 0x5E, 0x17};
  EXPECT_EQ(x1, expected);
}

class DesRoundtrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DesRoundtrip, RandomBlocksRoundtrip) {
  util::Rng rng{GetParam()};
  std::vector<std::uint8_t> key(8);
  for (auto& b : key) b = static_cast<std::uint8_t>(rng());
  const Des des{key};
  for (int i = 0; i < 64; ++i) {
    std::array<std::uint8_t, 8> pt{};
    for (auto& b : pt) b = static_cast<std::uint8_t>(rng());
    std::array<std::uint8_t, 8> ct{};
    std::array<std::uint8_t, 8> back{};
    des.encrypt_block(pt, ct);
    des.decrypt_block(ct, back);
    EXPECT_EQ(back, pt);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DesRoundtrip,
                         ::testing::Values(10u, 20u, 30u, 40u));

TEST(TripleDes, DegeneratesToSingleDesWithRepeatedKey) {
  // Built by index, not repeated range-inserts: GCC 12's -Wstringop-overflow
  // misfires on the unrolled insert loop at -O3 (see src/net/pcap.cpp).
  std::vector<std::uint8_t> key24(24);
  for (std::size_t i = 0; i < key24.size(); ++i) key24[i] = kKey[i % kKey.size()];
  const TripleDes tdes{key24};
  std::array<std::uint8_t, 8> out{};
  tdes.encrypt_block(kPlain, out);
  EXPECT_EQ(out, kCipher);  // EDE with K1=K2=K3 is single DES.
}

TEST(TripleDes, RoundtripWithDistinctKeys) {
  util::Rng rng{99};
  std::vector<std::uint8_t> key(24);
  for (auto& b : key) b = static_cast<std::uint8_t>(rng());
  const TripleDes tdes{key};
  for (int i = 0; i < 32; ++i) {
    std::array<std::uint8_t, 8> pt{};
    for (auto& b : pt) b = static_cast<std::uint8_t>(rng());
    std::array<std::uint8_t, 8> ct{};
    std::array<std::uint8_t, 8> back{};
    tdes.encrypt_block(pt, ct);
    tdes.decrypt_block(ct, back);
    EXPECT_EQ(back, pt);
    EXPECT_NE(ct, pt);
  }
}

TEST(TripleDes, DiffersFromSingleDesWithDistinctKeys) {
  util::Rng rng{123};
  std::vector<std::uint8_t> key(24);
  for (auto& b : key) b = static_cast<std::uint8_t>(rng());
  const TripleDes tdes{key};
  const Des des{std::span<const std::uint8_t>(key).subspan(0, 8)};
  std::array<std::uint8_t, 8> t{};
  std::array<std::uint8_t, 8> s{};
  tdes.encrypt_block(kPlain, t);
  des.encrypt_block(kPlain, s);
  EXPECT_NE(t, s);
}

TEST(DesFamily, RejectsBadSizes) {
  std::vector<std::uint8_t> seven(7, 0);
  EXPECT_THROW(Des{seven}, std::invalid_argument);
  std::vector<std::uint8_t> sixteen(16, 0);
  EXPECT_THROW(TripleDes{sixteen}, std::invalid_argument);
  const Des des{kKey};
  std::array<std::uint8_t, 7> small{};
  std::array<std::uint8_t, 8> out{};
  EXPECT_THROW(des.encrypt_block(small, out), std::invalid_argument);
}

TEST(DesFamily, Metadata) {
  const Des des{kKey};
  EXPECT_EQ(des.block_size(), 8u);
  EXPECT_EQ(des.name(), "DES");
  std::vector<std::uint8_t> key24(24, 1);
  const TripleDes tdes{key24};
  EXPECT_EQ(tdes.block_size(), 8u);
  EXPECT_EQ(tdes.key_size(), 24u);
  EXPECT_EQ(tdes.name(), "3DES");
}

}  // namespace
}  // namespace tv::crypto
