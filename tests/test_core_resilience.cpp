// Degraded-network resilience: bursty losses, AP outages, ARQ backoff,
// deadlines, policy degradation, and graceful experiment failure.
#include <gtest/gtest.h>

#include <vector>

#include "core/experiment.hpp"
#include "core/pipeline.hpp"
#include "util/arena.hpp"

namespace tv::core {
namespace {

// A stream of `frames` frames: the first is a 6-fragment I-frame, the
// rest single-fragment P packets (same shape as the pipeline tests).
util::Arena& test_arena() {
  static util::Arena arena;  // lives for the whole test binary.
  return arena;
}

std::vector<net::VideoPacket> long_stream(int frames, bool encrypt_all = false) {
  std::vector<net::VideoPacket> packets;
  std::uint16_t seq = 0;
  for (int f = 0; f < frames; ++f) {
    const bool i_frame = f % 30 == 0;
    const int fragments = i_frame ? 6 : 1;
    for (int g = 0; g < fragments; ++g) {
      net::VideoPacket p;
      p.sequence = seq++;
      p.frame_index = f;
      p.fragment_index = g;
      p.fragment_count = fragments;
      p.is_i_frame = i_frame;
      p.encrypted = encrypt_all;
      p.allocate_payload(test_arena(), i_frame ? 1400 : 300,
                         static_cast<std::uint8_t>(f));
      packets.push_back(std::move(p));
    }
  }
  return packets;
}

PipelineConfig base_config() {
  PipelineConfig c;
  c.device = samsung_galaxy_s2();
  return c;
}

ChannelModel bursty_channel(double rx_loss, double burst) {
  ChannelModel m;
  m.receiver.mean_loss_prob = rx_loss;
  m.receiver.mean_burst_length = burst;
  m.eavesdropper.mean_loss_prob = 0.01;
  m.eavesdropper.mean_burst_length = burst;
  return m;
}

// Acceptance: 30% bursty loss plus a mid-transfer AP outage completes
// without throwing, reports nonzero failure/retry counters, and the same
// seed reproduces the identical failure trace byte for byte.
TEST(Resilience, BurstyLossPlusOutageCompletesAndReproduces) {
  auto config = base_config();
  config.transport = Transport::kHttpTcp;
  config.tcp_max_attempts = 4;
  config.channel = bursty_channel(0.30, 4.0);
  config.channel->outages = {{0.5, 0.3}};  // AP gone mid-transfer.
  const auto packets = long_stream(60);

  const auto a = simulate_transfer(config, packets, 2013);
  const auto b = simulate_transfer(config, packets, 2013);

  EXPECT_GT(a.retransmissions, 0u);
  EXPECT_GT(a.outage_drops, 0u);
  EXPECT_FALSE(a.failures.empty());

  // Identical failure trace, field by field.
  ASSERT_EQ(a.failures.size(), b.failures.size());
  for (std::size_t i = 0; i < a.failures.size(); ++i) {
    EXPECT_EQ(a.failures[i].kind, b.failures[i].kind);
    EXPECT_EQ(a.failures[i].packet_index, b.failures[i].packet_index);
    EXPECT_DOUBLE_EQ(a.failures[i].time_s, b.failures[i].time_s);
  }
  EXPECT_EQ(a.receiver_delivered, b.receiver_delivered);
  EXPECT_EQ(a.retransmissions, b.retransmissions);
  EXPECT_EQ(a.outage_drops, b.outage_drops);
  ASSERT_EQ(a.timings.size(), b.timings.size());
  for (std::size_t i = 0; i < a.timings.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.timings[i].completion, b.timings[i].completion);
  }

  // A different seed produces a different trace (the chain is live).
  const auto c = simulate_transfer(config, packets, 2014);
  EXPECT_NE(a.receiver_delivered, c.receiver_delivered);
}

TEST(Resilience, OutageDropsEverythingInsideTheWindowForUdp) {
  auto config = base_config();
  config.channel = bursty_channel(0.0, 1.0);  // lossless except the outage.
  config.channel->outages = {{0.4, 0.4}};
  const auto packets = long_stream(40);
  const auto r = simulate_transfer(config, packets, 5);

  std::size_t in_window = 0;
  for (std::size_t i = 0; i < packets.size(); ++i) {
    const double t = r.timings[i].completion;
    if (t >= 0.4 && t < 0.8) {
      ++in_window;
      EXPECT_FALSE(r.receiver_delivered[i]);
      EXPECT_FALSE(r.eavesdropper_captured[i]);
    } else {
      EXPECT_TRUE(r.receiver_delivered[i]);
    }
  }
  EXPECT_GT(in_window, 0u);
  EXPECT_EQ(r.outage_drops, in_window);
  // Every outage loss is recorded as an ApOutage failure event.
  EXPECT_EQ(r.failures.size(), in_window);
  for (const auto& f : r.failures) {
    EXPECT_EQ(f.kind, FailureEvent::Kind::kApOutage);
    EXPECT_TRUE(f.time_s >= 0.4 && f.time_s < 0.8);
  }
}

// Acceptance: Gilbert-Elliott degenerated to burst length 1 matches the
// legacy Bernoulli channel within statistical noise.
TEST(Resilience, DegenerateGilbertElliottMatchesBernoulli) {
  const auto packets = long_stream(120);

  auto legacy = base_config();
  legacy.receiver_loss_prob = 0.10;
  legacy.eavesdropper_loss_prob = 0.05;

  auto ge = legacy;
  ge.channel = ChannelModel{};
  ge.channel->receiver = {.mean_loss_prob = 0.10, .mean_burst_length = 1.0};
  ge.channel->eavesdropper = {.mean_loss_prob = 0.05,
                              .mean_burst_length = 1.0};

  double legacy_rx = 0.0, ge_rx = 0.0, legacy_ev = 0.0, ge_ev = 0.0;
  const int reps = 20;
  for (int rep = 0; rep < reps; ++rep) {
    const auto seed = static_cast<std::uint64_t>(rep) + 1;
    const auto a = simulate_transfer(legacy, packets, seed);
    const auto b = simulate_transfer(ge, packets, seed);
    for (std::size_t i = 0; i < packets.size(); ++i) {
      legacy_rx += a.receiver_delivered[i] ? 1.0 : 0.0;
      ge_rx += b.receiver_delivered[i] ? 1.0 : 0.0;
      legacy_ev += a.eavesdropper_captured[i] ? 1.0 : 0.0;
      ge_ev += b.eavesdropper_captured[i] ? 1.0 : 0.0;
    }
  }
  const double n = static_cast<double>(packets.size()) * reps;
  EXPECT_NEAR(legacy_rx / n, 0.90, 0.01);
  EXPECT_NEAR(ge_rx / n, legacy_rx / n, 0.01);
  EXPECT_NEAR(ge_ev / n, legacy_ev / n, 0.01);
}

TEST(Resilience, BurstsConcentrateLossesAtFixedRate) {
  const auto packets = long_stream(150);
  auto iid = base_config();
  iid.channel = bursty_channel(0.20, 1.0);
  auto bursty = base_config();
  bursty.channel = bursty_channel(0.20, 6.0);

  // Count loss runs at the receiver across several seeds.
  auto mean_run = [&](const PipelineConfig& cfg) {
    std::size_t losses = 0, runs = 0;
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
      const auto r = simulate_transfer(cfg, packets, seed);
      bool in_run = false;
      for (bool got : r.receiver_delivered) {
        if (!got) {
          ++losses;
          if (!in_run) {
            ++runs;
            in_run = true;
          }
        } else {
          in_run = false;
        }
      }
    }
    return static_cast<double>(losses) / static_cast<double>(runs);
  };
  EXPECT_GT(mean_run(bursty), 2.0 * mean_run(iid));
}

TEST(Resilience, ExponentialBackoffSlowsRetriesAndCapHolds) {
  const auto packets = long_stream(40);
  auto flat = base_config();
  flat.transport = Transport::kHttpTcp;
  flat.receiver_loss_prob = 0.4;
  auto expo = flat;
  expo.tcp_backoff_multiplier = 2.0;
  expo.tcp_backoff_max_s = 0.1;

  double flat_total = 0.0, expo_total = 0.0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    flat_total += simulate_transfer(flat, packets, seed).mean_delay_s();
    expo_total += simulate_transfer(expo, packets, seed).mean_delay_s();
  }
  EXPECT_GT(expo_total, flat_total);

  // An absurdly low cap collapses exponential back to near-flat.
  auto capped = expo;
  capped.tcp_backoff_max_s = flat.tcp_retx_penalty_s;
  double capped_total = 0.0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    capped_total += simulate_transfer(capped, packets, seed).mean_delay_s();
  }
  EXPECT_NEAR(capped_total, flat_total, 0.05 * flat_total);
}

TEST(Resilience, DeadlineGiveUpBoundsSojournAndRecordsFailures) {
  const auto packets = long_stream(40);
  auto config = base_config();
  config.transport = Transport::kHttpTcp;
  config.channel = bursty_channel(0.5, 8.0);  // brutal bursts.
  config.tcp_max_attempts = 64;
  config.packet_deadline_s = 0.08;

  const auto r = simulate_transfer(config, packets, 3);
  EXPECT_GT(r.deadline_drops, 0u);
  std::size_t deadline_events = 0;
  for (const auto& f : r.failures) {
    if (f.kind == FailureEvent::Kind::kDeadlineExpired) ++deadline_events;
  }
  EXPECT_EQ(deadline_events, r.deadline_drops);
  for (std::size_t i = 0; i < packets.size(); ++i) {
    // Give-up keeps every sojourn bounded near the deadline (the last
    // transmission may finish slightly past it, but no unbounded wait).
    EXPECT_LT(r.timings[i].delay(), 0.5);
  }
}

TEST(Resilience, QueuePressureDegradesToIFrameOnlyEncryption) {
  // Heavy all-encrypted stream (3 MTU fragments per P frame) arriving at
  // 120 fps against slow 3DES: the send queue saturates and sojourn
  // grows, so the degradation threshold must kick in on P packets.
  std::vector<net::VideoPacket> packets;
  std::uint16_t seq = 0;
  for (int f = 0; f < 60; ++f) {
    const bool i_frame = f == 0;
    const int fragments = i_frame ? 6 : 3;
    for (int g = 0; g < fragments; ++g) {
      net::VideoPacket p;
      p.sequence = seq++;
      p.frame_index = f;
      p.fragment_index = g;
      p.fragment_count = fragments;
      p.is_i_frame = i_frame;
      p.encrypted = true;
      p.allocate_payload(test_arena(), 1400, static_cast<std::uint8_t>(f));
      packets.push_back(std::move(p));
    }
  }
  auto config = base_config();
  config.algorithm = crypto::Algorithm::kTripleDes;  // slow: queue builds.
  config.fps = 120.0;
  config.frame_jitter_mean_s = 0.0;  // steady producer, saturated server.
  config.degrade_sojourn_s = 0.05;

  const auto r = simulate_transfer(config, packets, 9);
  EXPECT_GT(r.degraded_packets, 0u);
  for (std::size_t i = 0; i < packets.size(); ++i) {
    if (r.degraded_cleartext[i]) {
      EXPECT_FALSE(packets[i].is_i_frame);  // I-frames keep encryption.
      EXPECT_DOUBLE_EQ(r.timings[i].encryption_s, 0.0);
    }
  }

  // Degradation sheds load: strictly less encrypted payload than the
  // same transfer without it.
  auto no_degrade = config;
  no_degrade.degrade_sojourn_s = 0.0;
  const auto full = simulate_transfer(no_degrade, packets, 9);
  EXPECT_LT(r.encrypted_payload_bytes, full.encrypted_payload_bytes);
  EXPECT_EQ(full.degraded_packets, 0u);
}

TEST(Resilience, ExperimentSurvivesDegradedNetworkWithPartialStats) {
  const Workload w = build_workload(video::MotionLevel::kLow, 10, 20, 7);
  ExperimentSpec spec;
  spec.policy = {policy::Mode::kIFrames, crypto::Algorithm::kAes256, 0.0};
  spec.pipeline.device = samsung_galaxy_s2();
  spec.pipeline.transport = Transport::kHttpTcp;
  spec.pipeline.tcp_max_attempts = 3;
  spec.pipeline.channel = bursty_channel(0.30, 4.0);
  spec.pipeline.channel->outages = {{0.2, 0.2}};
  spec.repetitions = 3;
  spec.seed = 11;
  spec.evaluate_quality = false;

  const auto r = run_experiment(spec, w);
  EXPECT_EQ(r.completed_repetitions, 3);
  EXPECT_EQ(r.failed_repetitions, 0);
  EXPECT_GT(r.total_retransmissions, 0u);
  EXPECT_GT(r.total_outage_drops, 0u);
  EXPECT_FALSE(r.failures.empty());
  for (const auto& f : r.failures) {
    EXPECT_GE(f.repetition, 0);
    EXPECT_LT(f.repetition, 3);
  }
  EXPECT_GT(r.delay_ms.mean(), 0.0);
}

TEST(Resilience, ExperimentRecordsFailedRepetitionsInsteadOfThrowing) {
  const Workload w = build_workload(video::MotionLevel::kLow, 10, 20, 7);
  ExperimentSpec spec;
  spec.policy = {policy::Mode::kNone, crypto::Algorithm::kAes256, 0.0};
  spec.pipeline.device = samsung_galaxy_s2();
  spec.pipeline.mac_success_prob = 0.0;  // every repetition throws.
  spec.repetitions = 2;
  spec.evaluate_quality = false;

  const auto r = run_experiment(spec, w);
  EXPECT_EQ(r.completed_repetitions, 0);
  EXPECT_EQ(r.failed_repetitions, 2);
  ASSERT_EQ(r.failures.size(), 2u);
  EXPECT_EQ(r.failures[0].kind, FailureEvent::Kind::kException);
  EXPECT_EQ(r.failures[0].repetition, 0);
  EXPECT_EQ(r.failures[1].repetition, 1);
}

TEST(Resilience, ValidatesResilienceKnobs) {
  const auto packets = long_stream(5);
  auto bad = base_config();
  bad.tcp_backoff_multiplier = 0.5;
  EXPECT_THROW((void)simulate_transfer(bad, packets, 1),
               std::invalid_argument);
  auto bad2 = base_config();
  bad2.packet_deadline_s = -1.0;
  EXPECT_THROW((void)simulate_transfer(bad2, packets, 1),
               std::invalid_argument);
  auto bad3 = base_config();
  bad3.channel = bursty_channel(1.5, 2.0);  // impossible loss rate.
  EXPECT_THROW((void)simulate_transfer(bad3, packets, 1),
               std::invalid_argument);
}

}  // namespace
}  // namespace tv::core
