// Property-based testing on top of GoogleTest.
//
// A property is an ordinary callable that draws random inputs from the
// tv::util::Rng it is handed and makes EXPECT_*/ASSERT_* assertions about
// them; proptest::check runs it over a bounded number of seeded cases.
// Case seeds derive from the root seed via util::derive_seed, so the whole
// run is reproducible, and when a case fails the harness re-emits the
// case's assertion failures plus a summary naming the environment
// overrides that replay exactly that case:
//
//     TV_PROPTEST_SEED=<root> TV_PROPTEST_CASES=<n> ctest -R <suite>
//
// TV_PROPTEST_SEED replaces the root seed and TV_PROPTEST_CASES the case
// count of every Config::from_env in the process, so a failure found in a
// long exploratory run (TV_PROPTEST_CASES=10000) replays in one case.
#pragma once

#include <gtest/gtest-spi.h>
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <vector>

#include "util/rng.hpp"

namespace tv::proptest {

/// Root seed and bounded case count for one property.
struct Config {
  std::uint64_t seed = 0x9e17;
  int cases = 50;

  /// Defaults overridden by TV_PROPTEST_SEED / TV_PROPTEST_CASES.
  [[nodiscard]] static Config from_env(std::uint64_t default_seed,
                                       int default_cases) {
    Config config;
    config.seed = default_seed;
    config.cases = default_cases;
    if (const char* s = std::getenv("TV_PROPTEST_SEED")) {
      config.seed = std::strtoull(s, nullptr, 0);
    }
    if (const char* n = std::getenv("TV_PROPTEST_CASES")) {
      config.cases = static_cast<int>(std::strtol(n, nullptr, 0));
    }
    return config;
  }
};

/// Run `body(rng, case_seed)` for config.cases seeded cases.  The body's
/// assertion failures are intercepted per case; the first failing case is
/// re-reported with its reproduction seed and stops the property (later
/// cases would only repeat the noise).
template <typename Body>
void check(const char* property, const Config& config, Body&& body) {
  for (int i = 0; i < config.cases; ++i) {
    const std::uint64_t case_seed =
        util::derive_seed(config.seed, 0x9707e57, static_cast<std::uint64_t>(i));
    util::Rng rng{case_seed};
    ::testing::TestPartResultArray failures;
    {
      ::testing::ScopedFakeTestPartResultReporter reporter(
          ::testing::ScopedFakeTestPartResultReporter::
              INTERCEPT_ONLY_CURRENT_THREAD,
          &failures);
      body(rng, case_seed);
    }
    if (failures.size() == 0) continue;
    for (int f = 0; f < failures.size(); ++f) {
      const ::testing::TestPartResult& r = failures.GetTestPartResult(f);
      ADD_FAILURE_AT(r.file_name() != nullptr ? r.file_name() : "<unknown>",
                     r.line_number())
          << r.message();
    }
    ADD_FAILURE() << "property '" << property << "' failed at case " << i
                  << " of " << config.cases
                  << " (case seed " << case_seed
                  << "); reproduce with TV_PROPTEST_SEED=" << config.seed
                  << " TV_PROPTEST_CASES=" << (i + 1);
    return;
  }
}

// --- Generators. -----------------------------------------------------------

[[nodiscard]] inline std::vector<std::uint8_t> random_bytes(util::Rng& rng,
                                                            std::size_t n) {
  std::vector<std::uint8_t> out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng());
  return out;
}

/// Uniform size in [lo, hi].
[[nodiscard]] inline std::size_t random_size(util::Rng& rng, std::size_t lo,
                                             std::size_t hi) {
  return lo + static_cast<std::size_t>(rng.uniform_int(hi - lo + 1));
}

}  // namespace tv::proptest
