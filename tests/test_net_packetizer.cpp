#include "net/packetizer.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "crypto/suite.hpp"
#include "util/arena.hpp"
#include "util/rng.hpp"
#include "video/codec.hpp"
#include "video/scene.hpp"

namespace tv::net {
namespace {

video::EncodedStream small_stream(std::uint64_t seed, int frames = 8,
                                  int gop = 4) {
  video::SceneParameters p =
      video::SceneParameters::preset(video::MotionLevel::kMedium);
  p.width = 128;
  p.height = 96;
  const video::SceneGenerator gen{p, seed};
  video::CodecConfig config;
  config.gop_size = gop;
  return video::Encoder{config}.encode(gen.render_clip(frames));
}

TEST(Packetizer, FragmentMetadataIsConsistent) {
  const auto stream = small_stream(1);
  util::Arena arena;
  const auto packets = packetize(stream, arena, 1500, 30.0);
  ASSERT_FALSE(packets.empty());
  const std::size_t payload_max = max_payload(1500);
  std::size_t frame_bytes[64] = {};
  for (const auto& p : packets) {
    EXPECT_LE(p.payload.size(), payload_max);
    EXPECT_FALSE(p.encrypted);
    EXPECT_EQ(p.byte_offset,
              static_cast<std::size_t>(p.fragment_index) * payload_max);
    EXPECT_LT(p.fragment_index, p.fragment_count);
    frame_bytes[p.frame_index] += p.payload.size();
    EXPECT_EQ(p.is_i_frame,
              stream.frames[static_cast<std::size_t>(p.frame_index)].is_i);
  }
  for (std::size_t f = 0; f < stream.frames.size(); ++f) {
    EXPECT_EQ(frame_bytes[f], stream.frames[f].data.size());
  }
}

TEST(Packetizer, SequenceNumbersAreConsecutive) {
  const auto stream = small_stream(2);
  util::Arena arena;
  const auto packets = packetize(stream, arena);
  for (std::size_t i = 0; i < packets.size(); ++i) {
    EXPECT_EQ(packets[i].sequence, static_cast<std::uint16_t>(i));
  }
}

TEST(Packetizer, SmallerMtuMeansMorePackets) {
  const auto stream = small_stream(3);
  util::Arena arena;
  EXPECT_GT(packetize(stream, arena, 576).size(),
            packetize(stream, arena, 1500).size());
  EXPECT_THROW((void)packetize(stream, arena, 40), std::invalid_argument);
}

TEST(Packetizer, WireBytesIncludeHeaders) {
  const auto stream = small_stream(4);
  util::Arena arena;
  const auto packets = packetize(stream, arena);
  for (const auto& p : packets) {
    EXPECT_EQ(p.wire_bytes(), p.payload.size() + 40u);
  }
}

TEST(Reassemble, IntactDeliveryRestoresEveryFrameByte) {
  const auto stream = small_stream(5);
  util::Arena arena;
  const auto packets = packetize(stream, arena);
  const std::vector<bool> delivered(packets.size(), true);
  const auto frames =
      reassemble(packets, delivered, static_cast<int>(stream.frames.size()),
                 nullptr, {});
  ASSERT_EQ(frames.size(), stream.frames.size());
  for (std::size_t f = 0; f < frames.size(); ++f) {
    EXPECT_EQ(frames[f].data, stream.frames[f].data);
    for (bool ok : frames[f].byte_ok) EXPECT_TRUE(ok);
  }
}

TEST(Reassemble, LostPacketLeavesByteHole) {
  const auto stream = small_stream(6);
  util::Arena arena;
  const auto packets = packetize(stream, arena);
  std::vector<bool> delivered(packets.size(), true);
  delivered[0] = false;  // first fragment of the first I-frame.
  const auto frames =
      reassemble(packets, delivered, static_cast<int>(stream.frames.size()),
                 nullptr, {});
  EXPECT_FALSE(frames[0].byte_ok[0]);
  EXPECT_FALSE(frames[0].range_ok(0, packets[0].payload.size()));
}

TEST(EncryptSelected, ReceiverDecryptsEavesdropperCannot) {
  const auto stream = small_stream(7);
  util::Arena arena;
  auto packets = packetize(stream, arena);
  // Encrypt all I-frame packets.
  std::vector<bool> selected(packets.size(), false);
  for (std::size_t i = 0; i < packets.size(); ++i) {
    selected[i] = packets[i].is_i_frame;
  }
  const auto cipher =
      crypto::make_cipher_from_seed(crypto::Algorithm::kAes256, 9);
  std::vector<std::uint8_t> iv(cipher->block_size(), 0x7e);
  encrypt_selected(packets, selected, *cipher, iv);

  const auto stats = encryption_stats(packets);
  EXPECT_GT(stats.encrypted_packets, 0u);
  EXPECT_LT(stats.encrypted_packets, stats.total_packets);

  const std::vector<bool> delivered(packets.size(), true);
  const int n = static_cast<int>(stream.frames.size());

  const auto receiver = reassemble(packets, delivered, n, cipher.get(), iv);
  for (std::size_t f = 0; f < receiver.size(); ++f) {
    EXPECT_EQ(receiver[f].data, stream.frames[f].data) << "frame " << f;
  }

  const auto eaves = reassemble(packets, delivered, n, nullptr, iv);
  // Encrypted (I) frames are erasures for the eavesdropper...
  EXPECT_FALSE(eaves[0].range_ok(0, 1));
  // ...while clear P-frames arrive fine.
  EXPECT_EQ(eaves[1].data, stream.frames[1].data);
}

TEST(EncryptSelected, PayloadActuallyChangesOnTheWire) {
  const auto stream = small_stream(8);
  util::Arena arena;
  auto packets = packetize(stream, arena);
  // Deep copy: the payload member is a view, so a snapshot must own bytes.
  const std::vector<std::uint8_t> original(packets[0].payload.begin(),
                                           packets[0].payload.end());
  std::vector<bool> selected(packets.size(), false);
  selected[0] = true;
  const auto cipher =
      crypto::make_cipher_from_seed(crypto::Algorithm::kTripleDes, 10);
  std::vector<std::uint8_t> iv(cipher->block_size(), 0x31);
  encrypt_selected(packets, selected, *cipher, iv);
  EXPECT_TRUE(packets[0].encrypted);
  EXPECT_NE(packets[0].payload, original);
  EXPECT_EQ(packets[0].payload.size(), original.size());
}

TEST(EncryptionStats, FractionsAreExact) {
  const auto stream = small_stream(11);
  util::Arena arena;
  auto packets = packetize(stream, arena);
  std::vector<bool> selected(packets.size(), false);
  for (std::size_t i = 0; i < packets.size(); i += 2) selected[i] = true;
  const auto cipher =
      crypto::make_cipher_from_seed(crypto::Algorithm::kAes128, 12);
  std::vector<std::uint8_t> iv(cipher->block_size(), 0x01);
  encrypt_selected(packets, selected, *cipher, iv);
  const auto stats = encryption_stats(packets);
  EXPECT_EQ(stats.encrypted_packets, (packets.size() + 1) / 2);
  EXPECT_NEAR(stats.packet_fraction(), 0.5, 0.51 / packets.size());
}

TEST(Reassemble, ValidatesInputSizes) {
  const auto stream = small_stream(13);
  util::Arena arena;
  const auto packets = packetize(stream, arena);
  const std::vector<bool> wrong(packets.size() + 1, true);
  EXPECT_THROW((void)reassemble(packets, wrong, 8, nullptr, {}),
               std::invalid_argument);
}

}  // namespace
}  // namespace tv::net
