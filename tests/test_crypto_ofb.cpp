#include "crypto/ofb.hpp"

#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "crypto/aes.hpp"
#include "crypto/des.hpp"
#include "crypto/suite.hpp"
#include "util/rng.hpp"

namespace tv::crypto {
namespace {

std::vector<std::uint8_t> random_bytes(std::size_t n, std::uint64_t seed) {
  util::Rng rng{seed};
  std::vector<std::uint8_t> out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng());
  return out;
}

TEST(Ofb, NistSp80038aAes128Vector) {
  // NIST SP 800-38A, F.4.1 OFB-AES128: first block.
  const std::vector<std::uint8_t> key = {0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae,
                                         0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88,
                                         0x09, 0xcf, 0x4f, 0x3c};
  const std::vector<std::uint8_t> iv = {0x00, 0x01, 0x02, 0x03, 0x04, 0x05,
                                        0x06, 0x07, 0x08, 0x09, 0x0a, 0x0b,
                                        0x0c, 0x0d, 0x0e, 0x0f};
  const std::vector<std::uint8_t> plaintext = {
      0x6b, 0xc1, 0xbe, 0xe2, 0x2e, 0x40, 0x9f, 0x96,
      0xe9, 0x3d, 0x7e, 0x11, 0x73, 0x93, 0x17, 0x2a};
  const std::vector<std::uint8_t> expected = {
      0x3b, 0x3f, 0xd9, 0x2e, 0xb7, 0x2d, 0xad, 0x20,
      0x33, 0x34, 0x49, 0xf8, 0xe8, 0x3c, 0xfb, 0x4a};
  const Aes aes{key};
  EXPECT_EQ(ofb_transform(aes, iv, plaintext), expected);
}

class OfbInvolution
    : public ::testing::TestWithParam<std::pair<Algorithm, std::size_t>> {};

TEST_P(OfbInvolution, ApplyingTwiceRestoresInput) {
  const auto [alg, size] = GetParam();
  const auto cipher = make_cipher_from_seed(alg, 7);
  const auto iv = random_bytes(cipher->block_size(), 11);
  const auto plaintext = random_bytes(size, 13);
  const auto ciphertext = ofb_transform(*cipher, iv, plaintext);
  if (size > 0) {
    EXPECT_NE(ciphertext, plaintext);
  }
  EXPECT_EQ(ofb_transform(*cipher, iv, ciphertext), plaintext);
}

INSTANTIATE_TEST_SUITE_P(
    AlgorithmsAndSizes, OfbInvolution,
    ::testing::Values(std::pair{Algorithm::kAes128, std::size_t{0}},
                      std::pair{Algorithm::kAes128, std::size_t{1}},
                      std::pair{Algorithm::kAes128, std::size_t{15}},
                      std::pair{Algorithm::kAes128, std::size_t{16}},
                      std::pair{Algorithm::kAes128, std::size_t{1460}},
                      std::pair{Algorithm::kAes256, std::size_t{17}},
                      std::pair{Algorithm::kAes256, std::size_t{1460}},
                      std::pair{Algorithm::kTripleDes, std::size_t{7}},
                      std::pair{Algorithm::kTripleDes, std::size_t{8}},
                      std::pair{Algorithm::kTripleDes, std::size_t{1460}}));

TEST(Ofb, ChunkedStreamMatchesOneShot) {
  const auto cipher = make_cipher_from_seed(Algorithm::kAes256, 3);
  const auto iv = random_bytes(16, 4);
  auto data = random_bytes(1000, 5);
  const auto oneshot = ofb_transform(*cipher, iv, data);

  OfbStream stream{*cipher, iv};
  auto chunked = data;
  std::size_t pos = 0;
  for (std::size_t chunk : {1u, 7u, 16u, 100u, 300u, 576u}) {
    stream.apply(std::span<std::uint8_t>(chunked).subspan(pos, chunk));
    pos += chunk;
  }
  EXPECT_EQ(pos, chunked.size());
  EXPECT_EQ(chunked, oneshot);
}

TEST(Ofb, KeystreamIndependentOfPlaintext) {
  // OFB is a synchronous stream cipher: C xor P must be identical for any
  // plaintext under the same key/IV.
  const auto cipher = make_cipher_from_seed(Algorithm::kAes128, 21);
  const auto iv = random_bytes(16, 22);
  const auto p1 = random_bytes(256, 23);
  const auto p2 = random_bytes(256, 24);
  const auto c1 = ofb_transform(*cipher, iv, p1);
  const auto c2 = ofb_transform(*cipher, iv, p2);
  for (std::size_t i = 0; i < 256; ++i) {
    EXPECT_EQ(c1[i] ^ p1[i], c2[i] ^ p2[i]);
  }
}

TEST(Ofb, ErrorsDoNotPropagate) {
  // Flipping one ciphertext bit flips exactly that plaintext bit
  // (Section 5's rationale for choosing OFB).
  const auto cipher = make_cipher_from_seed(Algorithm::kAes256, 31);
  const auto iv = random_bytes(16, 32);
  const auto plaintext = random_bytes(400, 33);
  auto ciphertext = ofb_transform(*cipher, iv, plaintext);
  ciphertext[100] ^= 0x10;
  const auto decoded = ofb_transform(*cipher, iv, ciphertext);
  for (std::size_t i = 0; i < plaintext.size(); ++i) {
    if (i == 100) {
      EXPECT_EQ(decoded[i], plaintext[i] ^ 0x10);
    } else {
      EXPECT_EQ(decoded[i], plaintext[i]);
    }
  }
}

TEST(Ofb, SegmentIvsDifferPerSequenceNumber) {
  const auto cipher = make_cipher_from_seed(Algorithm::kAes128, 41);
  const auto flow_iv = random_bytes(16, 42);
  const auto iv0 = segment_iv(*cipher, flow_iv, 0);
  const auto iv1 = segment_iv(*cipher, flow_iv, 1);
  const auto iv0_again = segment_iv(*cipher, flow_iv, 0);
  EXPECT_NE(iv0, iv1);
  EXPECT_EQ(iv0, iv0_again);
  EXPECT_EQ(iv0.size(), cipher->block_size());
}

TEST(Ofb, RejectsWrongIvSize) {
  const auto cipher = make_cipher_from_seed(Algorithm::kAes128, 51);
  const auto short_iv = random_bytes(8, 52);
  std::vector<std::uint8_t> data(16, 0);
  EXPECT_THROW((void)ofb_transform(*cipher, short_iv, data), std::invalid_argument);
  EXPECT_THROW((void)segment_iv(*cipher, short_iv, 0), std::invalid_argument);
}

}  // namespace
}  // namespace tv::crypto
