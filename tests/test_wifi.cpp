#include <gtest/gtest.h>

#include <cmath>

#include "wifi/channel.hpp"
#include "wifi/dcf_model.hpp"
#include "wifi/dcf_sim.hpp"

namespace tv::wifi {
namespace {

TEST(DcfModel, SingleStationNeverCollides) {
  const DcfSolution s = solve_dcf(DcfParameters{.contenders = 1});
  EXPECT_DOUBLE_EQ(s.collision_probability, 0.0);
  EXPECT_NEAR(s.attempt_probability, 2.0 / 17.0, 1e-12);
}

TEST(DcfModel, BianchiTwoStationClosedForm) {
  // For n = 2, p = tau and the fixed point can be checked by residual.
  const DcfParameters params{.contenders = 2, .cw_min = 32,
                             .backoff_stages = 5};
  const DcfSolution s = solve_dcf(params);
  const double p = s.collision_probability;
  const double tau = s.attempt_probability;
  EXPECT_NEAR(p, tau, 1e-9);  // 1 - (1 - tau)^(2-1) = tau.
  // tau must satisfy Bianchi's backoff-chain equation.
  const double geometric = (1.0 - std::pow(2.0 * p, 5)) / (1.0 - 2.0 * p);
  EXPECT_NEAR(tau, 2.0 / (1.0 + 32.0 + p * 32.0 * geometric), 1e-9);
}

TEST(DcfModel, CollisionProbabilityGrowsWithContention) {
  double prev = 0.0;
  for (int n : {2, 4, 8, 16, 32, 64}) {
    const DcfSolution s = solve_dcf(DcfParameters{.contenders = n});
    EXPECT_GT(s.collision_probability, prev);
    prev = s.collision_probability;
  }
}

TEST(DcfModel, AttemptRateFallsWithContention) {
  double prev = 1.0;
  for (int n : {2, 4, 8, 16, 32}) {
    const DcfSolution s = solve_dcf(DcfParameters{.contenders = n});
    EXPECT_LT(s.attempt_probability, prev);
    prev = s.attempt_probability;
  }
}

TEST(DcfModel, LargerWindowReducesAttempts) {
  const auto small = solve_dcf(DcfParameters{.contenders = 8, .cw_min = 16});
  const auto large = solve_dcf(DcfParameters{.contenders = 8, .cw_min = 64});
  EXPECT_GT(small.attempt_probability, large.attempt_probability);
  EXPECT_GT(small.collision_probability, large.collision_probability);
}

class DcfModelVsSim : public ::testing::TestWithParam<int> {};

TEST_P(DcfModelVsSim, FixedPointMatchesSlottedSimulation) {
  const DcfParameters params{.contenders = GetParam()};
  const DcfSolution model = solve_dcf(params);
  const DcfSimResult sim = simulate_dcf(params, 300000, 42);
  EXPECT_NEAR(sim.attempt_probability, model.attempt_probability,
              0.08 * model.attempt_probability + 1e-4);
  EXPECT_NEAR(sim.collision_probability, model.collision_probability,
              0.08 * model.collision_probability + 5e-3);
}

INSTANTIATE_TEST_SUITE_P(Contenders, DcfModelVsSim,
                         ::testing::Values(2, 3, 5, 8, 12, 20, 32));

TEST(PacketSuccess, ComposesCollisionAndChannel) {
  const DcfParameters params{.contenders = 4};
  const double p_col = solve_dcf(params).collision_probability;
  const double ps = packet_success_rate(params, 0.1);
  EXPECT_NEAR(ps, (1.0 - p_col) * 0.9, 1e-12);
  EXPECT_THROW((void)packet_success_rate(params, 1.5), std::invalid_argument);
}

TEST(MeanCollisions, GeometricMean) {
  EXPECT_DOUBLE_EQ(mean_collisions(1.0), 0.0);
  EXPECT_DOUBLE_EQ(mean_collisions(0.5), 1.0);
  EXPECT_NEAR(mean_collisions(0.8), 0.25, 1e-12);
  EXPECT_THROW((void)mean_collisions(0.0), std::invalid_argument);
}

TEST(Channel, TransmissionTimeScalesWithSizeAndRate) {
  PhyParameters phy;
  const double t_small = transmission_time_s(phy, 100);
  const double t_big = transmission_time_s(phy, 1500);
  EXPECT_GT(t_big, t_small);
  PhyParameters fast = phy;
  fast.data_rate_mbps = 54.0;
  EXPECT_LT(transmission_time_s(fast, 1500), t_big);
}

TEST(Channel, TransmissionTimeIncludesAckExchange) {
  PhyParameters phy;
  phy.data_rate_mbps = 6.0;
  // Payload + MAC header bits at 6 Mb/s, plus two preambles, SIFS, ACK.
  const double expected = 20e-6 + (1500 + 28) * 8 / 6e6 + 10e-6 + 20e-6 +
                          14 * 8 / 6e6;
  EXPECT_NEAR(transmission_time_s(phy, 1500), expected, 1e-9);
}

TEST(Channel, PacketErrorProbability) {
  EXPECT_DOUBLE_EQ(packet_error_probability(0.0, 1500), 0.0);
  // 1 - (1 - b)^n for small b*n ~ b*n.
  EXPECT_NEAR(packet_error_probability(1e-7, 1500), 1500 * 8 * 1e-7, 1e-6);
  // Monotone in both arguments.
  EXPECT_GT(packet_error_probability(1e-5, 1500),
            packet_error_probability(1e-5, 100));
  EXPECT_THROW((void)packet_error_probability(-0.1, 10), std::invalid_argument);
}

TEST(Channel, BpskBerAtKnownSnrs) {
  EXPECT_NEAR(bpsk_bit_error_rate(0.0), 0.5, 1e-12);
  // Q(sqrt(2*4.77 lin)) ... standard value: BER at 9.6 dB ~ 1e-5.
  EXPECT_NEAR(bpsk_bit_error_rate(std::pow(10.0, 9.59 / 10.0)), 1e-5, 5e-6);
  EXPECT_GT(bpsk_bit_error_rate(1.0), bpsk_bit_error_rate(4.0));
}

TEST(DcfSim, ReproducibleBySeed) {
  const DcfParameters params{.contenders = 4};
  const auto a = simulate_dcf(params, 50000, 7);
  const auto b = simulate_dcf(params, 50000, 7);
  EXPECT_EQ(a.transmissions, b.transmissions);
  EXPECT_EQ(a.collisions, b.collisions);
}

}  // namespace
}  // namespace tv::wifi
