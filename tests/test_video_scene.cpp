#include "video/scene.hpp"

#include <gtest/gtest.h>

#include "video/frame.hpp"
#include "video/motion.hpp"

namespace tv::video {
namespace {

TEST(Scene, DeterministicPerSeedAndIndex) {
  const SceneGenerator a{SceneParameters::preset(MotionLevel::kMedium), 5};
  const SceneGenerator b{SceneParameters::preset(MotionLevel::kMedium), 5};
  const Frame fa = a.render(17);
  const Frame fb = b.render(17);
  EXPECT_DOUBLE_EQ(luma_mse(fa, fb), 0.0);
}

TEST(Scene, DifferentSeedsProduceDifferentContent) {
  const SceneGenerator a{SceneParameters::preset(MotionLevel::kMedium), 5};
  const SceneGenerator b{SceneParameters::preset(MotionLevel::kMedium), 6};
  EXPECT_GT(luma_mse(a.render(0), b.render(0)), 100.0);
}

TEST(Scene, RenderIsIndexPure) {
  const SceneGenerator g{SceneParameters::preset(MotionLevel::kHigh), 9};
  const Frame direct = g.render(40);
  const auto clip = g.render_clip(41);
  EXPECT_DOUBLE_EQ(luma_mse(direct, clip[40]), 0.0);
}

TEST(Scene, FrameDifferencesOrderByMotionLevel) {
  const int n = 30;
  double change[3] = {};
  int idx = 0;
  for (auto level : {MotionLevel::kLow, MotionLevel::kMedium,
                     MotionLevel::kHigh}) {
    const SceneGenerator g{SceneParameters::preset(level), 11};
    const auto clip = g.render_clip(n);
    double acc = 0.0;
    for (int i = 1; i < n; ++i) acc += luma_mse(clip[i - 1], clip[i]);
    change[idx++] = acc / (n - 1);
  }
  EXPECT_LT(change[0], change[1]);
  EXPECT_LT(change[1], change[2]);
}

TEST(Scene, ClassifierRecoversPresetLevels) {
  for (auto level : {MotionLevel::kLow, MotionLevel::kMedium,
                     MotionLevel::kHigh}) {
    const SceneGenerator g{SceneParameters::preset(level), 23};
    const auto clip = g.render_clip(40);
    const MotionReport report = classify_motion(clip);
    EXPECT_EQ(report.level, level) << "score " << report.score;
  }
}

TEST(Scene, SceneCutsCauseLargeJumps) {
  SceneParameters p = SceneParameters::preset(MotionLevel::kHigh);
  p.scene_cut_period = 10;
  const SceneGenerator g{p, 31};
  const Frame before = g.render(9);
  const Frame after = g.render(10);  // first frame of the next scene.
  const Frame within = g.render(8);
  EXPECT_GT(luma_mse(before, after), 4.0 * luma_mse(within, before));
}

TEST(Scene, CustomDimensionsRespected) {
  SceneParameters p = SceneParameters::preset(MotionLevel::kLow);
  p.width = 64;
  p.height = 48;
  const SceneGenerator g{p, 1};
  const Frame f = g.render(0);
  EXPECT_EQ(f.width(), 64);
  EXPECT_EQ(f.height(), 48);
}

TEST(MotionScore, ZeroForIdenticalFrames) {
  Frame f(32, 32);
  f.fill(90, 128, 128);
  EXPECT_DOUBLE_EQ(motion_score(f, f), 0.0);
}

TEST(MotionScore, OneForCompletelyDifferentFrames) {
  Frame a(32, 32);
  Frame b(32, 32);
  a.fill(0, 128, 128);
  b.fill(255, 128, 128);
  EXPECT_DOUBLE_EQ(motion_score(a, b), 1.0);
}

TEST(ClassifyMotion, RejectsShortClips) {
  Frame f(32, 32);
  EXPECT_THROW((void)classify_motion({f}), std::invalid_argument);
}

}  // namespace
}  // namespace tv::video
