#include "crypto/modes.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "crypto/aes.hpp"
#include "crypto/suite.hpp"
#include "util/rng.hpp"

namespace tv::crypto {
namespace {

const std::vector<std::uint8_t> kNistKey = {
    0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
    0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c};
const std::vector<std::uint8_t> kNistBlock1 = {
    0x6b, 0xc1, 0xbe, 0xe2, 0x2e, 0x40, 0x9f, 0x96,
    0xe9, 0x3d, 0x7e, 0x11, 0x73, 0x93, 0x17, 0x2a};

TEST(Cbc, NistSp80038aFirstBlock) {
  // SP 800-38A F.2.1 CBC-AES128, first block.
  const Aes aes{kNistKey};
  std::vector<std::uint8_t> iv(16);
  for (int i = 0; i < 16; ++i) iv[static_cast<std::size_t>(i)] =
      static_cast<std::uint8_t>(i);
  const auto ct = cbc_encrypt(aes, iv, kNistBlock1);
  const std::vector<std::uint8_t> expected = {
      0x76, 0x49, 0xab, 0xac, 0x81, 0x19, 0xb2, 0x46,
      0xce, 0xe9, 0x8e, 0x9b, 0x12, 0xe9, 0x19, 0x7d};
  ASSERT_EQ(ct.size(), 32u);  // one data block + one full padding block.
  EXPECT_TRUE(std::equal(expected.begin(), expected.end(), ct.begin()));
}

class CbcRoundtrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CbcRoundtrip, PaddingAndChainingRoundtrip) {
  const auto cipher = make_cipher_from_seed(Algorithm::kAes256, 5);
  util::Rng rng{GetParam()};
  std::vector<std::uint8_t> iv(16);
  for (auto& b : iv) b = static_cast<std::uint8_t>(rng());
  std::vector<std::uint8_t> pt(GetParam());
  for (auto& b : pt) b = static_cast<std::uint8_t>(rng());
  const auto ct = cbc_encrypt(*cipher, iv, pt);
  EXPECT_EQ(ct.size() % 16, 0u);
  EXPECT_GT(ct.size(), pt.size());  // PKCS#7 always pads.
  EXPECT_EQ(cbc_decrypt(*cipher, iv, ct), pt);
}

INSTANTIATE_TEST_SUITE_P(Sizes, CbcRoundtrip,
                         ::testing::Values(0u, 1u, 15u, 16u, 17u, 255u,
                                           1460u));

TEST(Cbc, DecryptRejectsCorruption) {
  const auto cipher = make_cipher_from_seed(Algorithm::kAes128, 7);
  std::vector<std::uint8_t> iv(16, 0x22);
  std::vector<std::uint8_t> pt(20, 0x33);
  auto ct = cbc_encrypt(*cipher, iv, pt);
  EXPECT_THROW((void)cbc_decrypt(*cipher, iv, std::span(ct).subspan(0, 15)),
               std::invalid_argument);
  // Corrupting the final block almost surely breaks the padding.
  ct.back() ^= 0xff;
  EXPECT_THROW((void)cbc_decrypt(*cipher, iv, ct), std::invalid_argument);
}

TEST(Cbc, ErrorPropagatesOneBlockOnly) {
  // CBC's known property (and why the paper prefers OFB for lossy video):
  // a flipped ciphertext bit garbles its own block and flips one bit of
  // the next, leaving the rest intact.
  const auto cipher = make_cipher_from_seed(Algorithm::kAes128, 9);
  std::vector<std::uint8_t> iv(16, 0x01);
  std::vector<std::uint8_t> pt(64, 0x00);
  auto ct = cbc_encrypt(*cipher, iv, pt);
  ct[16] ^= 0x80;  // corrupt block 2.
  // Strip padding check by decrypting manually through cbc_decrypt on a
  // reconstructed stream: padding block is the 5th, untouched, so decrypt
  // succeeds.
  const auto out = cbc_decrypt(*cipher, iv, ct);
  ASSERT_EQ(out.size(), 64u);
  // Block 1 intact, block 3 has exactly the mirrored bit flipped, block 4
  // intact.
  for (int i = 0; i < 16; ++i) EXPECT_EQ(out[static_cast<std::size_t>(i)], 0);
  EXPECT_EQ(out[32], 0x80);
  for (int i = 33; i < 64; ++i) EXPECT_EQ(out[static_cast<std::size_t>(i)], 0);
}

TEST(Ctr, NistSp80038aFirstBlock) {
  // SP 800-38A F.5.1 CTR-AES128, first block.
  const Aes aes{kNistKey};
  std::vector<std::uint8_t> counter0(16);
  for (int i = 0; i < 16; ++i) {
    counter0[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(0xf0 + i);
  }
  const auto ct = ctr_transform(aes, counter0, kNistBlock1);
  const std::vector<std::uint8_t> expected = {
      0x87, 0x4d, 0x61, 0x91, 0xb6, 0x20, 0xe3, 0x26,
      0x1b, 0xef, 0x68, 0x64, 0x99, 0x0d, 0xb6, 0xce};
  EXPECT_EQ(ct, expected);
}

TEST(Ctr, IsAnInvolutionAndLengthPreserving) {
  const auto cipher = make_cipher_from_seed(Algorithm::kTripleDes, 11);
  std::vector<std::uint8_t> nonce(8, 0x44);
  util::Rng rng{12};
  std::vector<std::uint8_t> pt(333);
  for (auto& b : pt) b = static_cast<std::uint8_t>(rng());
  const auto ct = ctr_transform(*cipher, nonce, pt);
  EXPECT_EQ(ct.size(), pt.size());
  EXPECT_NE(ct, pt);
  EXPECT_EQ(ctr_transform(*cipher, nonce, ct), pt);
}

TEST(Ctr, SeekableByInitialCounter) {
  // Transforming the second block alone with initial_counter=1 must match
  // the corresponding slice of the full transform (random access, the
  // property DASH/CENC relies on).
  const auto cipher = make_cipher_from_seed(Algorithm::kAes128, 13);
  std::vector<std::uint8_t> nonce(16, 0x10);
  std::vector<std::uint8_t> pt(48, 0xab);
  const auto full = ctr_transform(*cipher, nonce, pt);
  const auto tail = ctr_transform(
      *cipher, nonce, std::span<const std::uint8_t>(pt).subspan(16), 1);
  EXPECT_TRUE(std::equal(tail.begin(), tail.end(), full.begin() + 16));
}

TEST(Ctr, CounterCarryPropagates) {
  // A nonce ending in 0xff must roll over into the next byte.
  const auto cipher = make_cipher_from_seed(Algorithm::kAes128, 15);
  std::vector<std::uint8_t> nonce(16, 0x00);
  nonce[15] = 0xff;
  std::vector<std::uint8_t> incremented(16, 0x00);
  incremented[14] = 0x01;  // 0x...00ff + 1 = 0x...0100.
  std::vector<std::uint8_t> zeros(16, 0);
  const auto a = ctr_transform(*cipher, nonce, zeros, 1);
  const auto b = ctr_transform(*cipher, incremented, zeros, 0);
  EXPECT_EQ(a, b);
}

TEST(Modes, ValidateIvSizes) {
  const auto cipher = make_cipher_from_seed(Algorithm::kAes128, 17);
  std::vector<std::uint8_t> bad_iv(8, 0);
  std::vector<std::uint8_t> data(16, 0);
  EXPECT_THROW((void)cbc_encrypt(*cipher, bad_iv, data), std::invalid_argument);
  EXPECT_THROW((void)cbc_decrypt(*cipher, bad_iv, data), std::invalid_argument);
  EXPECT_THROW((void)ctr_transform(*cipher, bad_iv, data), std::invalid_argument);
}

}  // namespace
}  // namespace tv::crypto
