#include "core/pipeline.hpp"

#include <gtest/gtest.h>

#include <vector>
#include "util/arena.hpp"

namespace tv::core {
namespace {

util::Arena& test_arena() {
  static util::Arena arena;  // lives for the whole test binary.
  return arena;
}

// Hand-built packet list: one 6-fragment I-frame then five P packets.
std::vector<net::VideoPacket> test_packets(bool encrypt_i = false) {
  std::vector<net::VideoPacket> packets;
  std::uint16_t seq = 0;
  for (int f = 0; f < 6; ++f) {
    net::VideoPacket p;
    p.sequence = seq++;
    p.frame_index = 0;
    p.fragment_index = f;
    p.fragment_count = 6;
    p.is_i_frame = true;
    p.encrypted = encrypt_i;
    p.allocate_payload(test_arena(), 1400, 0x55);
    packets.push_back(std::move(p));
  }
  for (int f = 1; f <= 5; ++f) {
    net::VideoPacket p;
    p.sequence = seq++;
    p.frame_index = f;
    p.fragment_index = 0;
    p.fragment_count = 1;
    p.is_i_frame = false;
    p.allocate_payload(test_arena(), 300, 0xAA);
    packets.push_back(std::move(p));
  }
  return packets;
}

PipelineConfig test_config() {
  PipelineConfig c;
  c.device = samsung_galaxy_s2();
  return c;
}

TEST(Pipeline, TimelineInvariants) {
  const auto packets = test_packets();
  const auto r = simulate_transfer(test_config(), packets, 1);
  ASSERT_EQ(r.timings.size(), packets.size());
  double prev_completion = 0.0;
  for (const auto& t : r.timings) {
    EXPECT_GE(t.service_start, t.arrival);          // FIFO queue.
    EXPECT_GE(t.service_start, prev_completion - 1e-12);  // one server.
    EXPECT_GE(t.completion, t.service_start);
    EXPECT_GE(t.delay(), 0.0);
    EXPECT_GT(t.transmit_s, 0.0);
    prev_completion = t.completion;
  }
  EXPECT_GT(r.duration_s, 0.0);
  EXPECT_GT(r.airtime_s, 0.0);
}

TEST(Pipeline, ArrivalsAreMonotoneAndFramePaced) {
  const auto packets = test_packets();
  const auto r = simulate_transfer(test_config(), packets, 2);
  for (std::size_t i = 1; i < r.timings.size(); ++i) {
    EXPECT_GE(r.timings[i].arrival, r.timings[i - 1].arrival);
  }
  // Frame 5's packets cannot be read before its capture time 5/fps.
  EXPECT_GE(r.timings.back().arrival, 5.0 / 30.0);
}

TEST(Pipeline, EncryptionChargesTimeAndBytes) {
  const auto clear = simulate_transfer(test_config(), test_packets(false), 3);
  const auto enc = simulate_transfer(test_config(), test_packets(true), 3);
  EXPECT_EQ(clear.encrypted_payload_bytes, 0u);
  EXPECT_EQ(enc.encrypted_payload_bytes, 6u * 1400u);
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_DOUBLE_EQ(clear.timings[i].encryption_s, 0.0);
    EXPECT_GT(enc.timings[i].encryption_s, 0.0);
  }
  EXPECT_GT(enc.mean_delay_s(), clear.mean_delay_s());
}

TEST(Pipeline, TripleDesSlowerThanAes) {
  auto cfg_aes = test_config();
  cfg_aes.algorithm = crypto::Algorithm::kAes128;
  auto cfg_des = test_config();
  cfg_des.algorithm = crypto::Algorithm::kTripleDes;
  const auto packets = test_packets(true);
  double aes_total = 0.0;
  double des_total = 0.0;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    aes_total += simulate_transfer(cfg_aes, packets, seed).mean_delay_s();
    des_total += simulate_transfer(cfg_des, packets, seed).mean_delay_s();
  }
  EXPECT_GT(des_total, aes_total);
}

TEST(Pipeline, DeterministicPerSeed) {
  const auto packets = test_packets();
  const auto a = simulate_transfer(test_config(), packets, 7);
  const auto b = simulate_transfer(test_config(), packets, 7);
  EXPECT_EQ(a.receiver_delivered, b.receiver_delivered);
  EXPECT_DOUBLE_EQ(a.mean_delay_s(), b.mean_delay_s());
}

TEST(Pipeline, LossRatesShowUpInDeliveries) {
  auto config = test_config();
  config.receiver_loss_prob = 0.3;
  config.eavesdropper_loss_prob = 0.0;
  // Many packets for statistics.
  std::vector<net::VideoPacket> packets;
  for (int i = 0; i < 60; ++i) {
    auto batch = test_packets();
    for (auto& p : batch) {
      p.frame_index += i * 6;
      packets.push_back(std::move(p));
    }
  }
  const auto r = simulate_transfer(config, packets, 5);
  std::size_t rx = 0;
  std::size_t ev = 0;
  for (std::size_t i = 0; i < packets.size(); ++i) {
    rx += r.receiver_delivered[i] ? 1 : 0;
    ev += r.eavesdropper_captured[i] ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(rx) / packets.size(), 0.7, 0.05);
  EXPECT_EQ(ev, packets.size());
}

TEST(Pipeline, TcpRetransmitsUntilDelivered) {
  auto config = test_config();
  config.transport = Transport::kHttpTcp;
  config.receiver_loss_prob = 0.3;
  const auto packets = test_packets();
  const auto r = simulate_transfer(config, packets, 11);
  for (bool delivered : r.receiver_delivered) {
    EXPECT_TRUE(delivered);  // reliable transport.
  }
}

TEST(Pipeline, TcpCostsMoreDelayThanUdp) {
  auto udp = test_config();
  auto tcp = test_config();
  tcp.transport = Transport::kHttpTcp;
  tcp.receiver_loss_prob = udp.receiver_loss_prob = 0.05;
  const auto packets = test_packets();
  double udp_total = 0.0;
  double tcp_total = 0.0;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    udp_total += simulate_transfer(udp, packets, seed).mean_delay_s();
    tcp_total += simulate_transfer(tcp, packets, seed).mean_delay_s();
  }
  EXPECT_GT(tcp_total, udp_total);
}

TEST(Pipeline, ValidatesInputs) {
  EXPECT_THROW((void)simulate_transfer(test_config(), {}, 1),
               std::invalid_argument);
  auto bad = test_config();
  bad.mac_success_prob = 0.0;
  EXPECT_THROW((void)simulate_transfer(bad, test_packets(), 1),
               std::invalid_argument);
}

TEST(PipelineValidate, RejectsEveryBadServiceKnob) {
  const auto rejects = [](auto&& mutate) {
    auto config = test_config();
    mutate(config);
    EXPECT_THROW(validate(config), std::invalid_argument);
  };
  rejects([](PipelineConfig& c) { c.mac_success_prob = 0.0; });
  rejects([](PipelineConfig& c) { c.mac_success_prob = -0.1; });
  rejects([](PipelineConfig& c) { c.mac_success_prob = 1.5; });
  rejects([](PipelineConfig& c) { c.backoff_rate = 0.0; });
  rejects([](PipelineConfig& c) { c.backoff_rate = -1.0; });
  rejects([](PipelineConfig& c) { c.fps = 0.0; });
  EXPECT_NO_THROW(validate(test_config()));
}

TEST(PipelineValidate, RejectsEveryBadResilienceKnob) {
  const auto rejects = [](auto&& mutate) {
    auto config = test_config();
    mutate(config);
    EXPECT_THROW(validate(config), std::invalid_argument);
  };
  rejects([](PipelineConfig& c) { c.tcp_backoff_multiplier = 0.99; });
  rejects([](PipelineConfig& c) { c.tcp_backoff_max_s = -1e-3; });
  rejects([](PipelineConfig& c) { c.packet_deadline_s = -0.5; });
  rejects([](PipelineConfig& c) { c.degrade_sojourn_s = -0.1; });
}

TEST(PipelineValidate, RejectsBadChannelModels) {
  auto config = test_config();
  config.channel.emplace();
  config.channel->receiver.mean_loss_prob = 1.5;  // not a probability.
  EXPECT_THROW(validate(config), std::invalid_argument);

  config = test_config();
  config.channel.emplace();
  config.channel->outages.push_back({-1.0, 0.5});
  EXPECT_THROW(validate(config), std::invalid_argument);

  config = test_config();
  config.channel.emplace();
  config.channel->outages.push_back({1.0, -0.5});
  EXPECT_THROW(validate(config), std::invalid_argument);

  config = test_config();
  config.channel.emplace();
  config.channel->outages.push_back({1.0, 0.5});
  EXPECT_NO_THROW(validate(config));
}

TEST(Transport, StringRoundTripsCoverBothSpellings) {
  EXPECT_STREQ(to_string(Transport::kRtpUdp), "RTP/UDP");
  EXPECT_STREQ(to_string(Transport::kHttpTcp), "HTTP/TCP");
  EXPECT_STREQ(transport_key(Transport::kRtpUdp), "udp");
  EXPECT_STREQ(transport_key(Transport::kHttpTcp), "tcp");
  for (const Transport t : {Transport::kRtpUdp, Transport::kHttpTcp}) {
    EXPECT_EQ(transport_from_string(transport_key(t)), t);
    EXPECT_EQ(transport_from_string(to_string(t)), t);
  }
  EXPECT_THROW((void)transport_from_string("sctp"), std::invalid_argument);
  EXPECT_THROW((void)transport_from_string(""), std::invalid_argument);
}

TEST(FailureEvent, KindNamesAreStableAndDistinct) {
  EXPECT_STREQ(to_string(FailureEvent::Kind::kApOutage), "ap-outage");
  EXPECT_STREQ(to_string(FailureEvent::Kind::kDeadlineExpired),
               "deadline-expired");
  EXPECT_STREQ(to_string(FailureEvent::Kind::kMaxAttempts), "max-attempts");
  EXPECT_STREQ(to_string(FailureEvent::Kind::kException), "exception");
}

TEST(DeviceProfile, EncryptionTimesScaleWithSizeAndAlgorithm) {
  const auto device = samsung_galaxy_s2();
  EXPECT_GT(device.encryption_seconds(crypto::Algorithm::kAes256, 1460),
            device.encryption_seconds(crypto::Algorithm::kAes256, 100));
  EXPECT_GT(device.encryption_seconds(crypto::Algorithm::kTripleDes, 1460),
            device.encryption_seconds(crypto::Algorithm::kAes128, 1460));
  // HTC has the faster CPU (Table 1): cheaper crypto across algorithms.
  const auto htc = htc_amaze_4g();
  EXPECT_LT(htc.encryption_seconds(crypto::Algorithm::kAes256, 1460),
            device.encryption_seconds(crypto::Algorithm::kAes256, 1460));
}

}  // namespace
}  // namespace tv::core
