// Feature extraction from ciphertext-only captures: the adversary's raw
// material (docs/adversary.md).  Everything here is hand-crafted wire
// metadata — no video bytes are ever consulted.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "analysis/features.hpp"
#include "live/eavesdropper.hpp"
#include "net/pcap.hpp"
#include "net/rtp.hpp"

namespace tv::analysis {
namespace {

net::WireRtpPacket wire_packet(std::uint16_t sequence,
                               std::uint32_t timestamp,
                               std::size_t payload_bytes,
                               bool marker = false, bool padding = false,
                               double time_s = 0.0) {
  net::WireRtpPacket p;
  p.timestamp_s = time_s;
  p.header.sequence_number = sequence;
  p.header.timestamp = timestamp;
  p.header.marker = marker;
  p.header.padding = padding;
  p.payload.assign(payload_bytes, 0x11);
  return p;
}

TEST(AnalysisFeatures, GroupsPacketsIntoFramesBySequenceAndTimestamp) {
  std::vector<net::WireRtpPacket> wire;
  wire.push_back(wire_packet(0, 0, 1000, false, false, 0.00));
  wire.push_back(wire_packet(1, 0, 400, false, false, 0.01));
  wire.push_back(wire_packet(2, 3000, 200, false, false, 0.04));

  const CaptureFeatures f = extract_features(wire);
  ASSERT_EQ(f.packets.size(), 3u);
  ASSERT_EQ(f.frames.size(), 2u);
  EXPECT_EQ(f.frames[0].rtp_timestamp, 0u);
  EXPECT_EQ(f.frames[0].packet_count, 2u);
  EXPECT_EQ(f.frames[0].wire_bytes, 1400u);
  EXPECT_EQ(f.frames[1].rtp_timestamp, 3000u);
  EXPECT_EQ(f.frames[1].packet_count, 1u);
  EXPECT_DOUBLE_EQ(f.capture_start_s, 0.0);
  EXPECT_DOUBLE_EQ(f.capture_end_s, 0.04);
  EXPECT_EQ(f.expected_packets, 3u);
  EXPECT_DOUBLE_EQ(f.loss_rate_est, 0.0);
}

TEST(AnalysisFeatures, ReordersAndDeduplicatesBySequence) {
  std::vector<net::WireRtpPacket> wire;
  wire.push_back(wire_packet(2, 0, 300));
  wire.push_back(wire_packet(0, 0, 100));
  wire.push_back(wire_packet(1, 0, 200));
  // A duplicate of sequence 1 with a different length: first heard wins.
  wire.push_back(wire_packet(1, 0, 999));

  const CaptureFeatures f = extract_features(wire);
  ASSERT_EQ(f.packets.size(), 3u);
  EXPECT_EQ(f.packets[0].extended_sequence, 0);
  EXPECT_EQ(f.packets[1].extended_sequence, 1);
  EXPECT_EQ(f.packets[1].wire_payload_bytes, 200u);
  EXPECT_EQ(f.packets[2].extended_sequence, 2);
}

TEST(AnalysisFeatures, UnwrapsSequenceAcrossThe16BitBoundary) {
  std::vector<net::WireRtpPacket> wire;
  wire.push_back(wire_packet(65534, 0, 100));
  wire.push_back(wire_packet(65535, 0, 100));
  wire.push_back(wire_packet(0, 0, 100));
  wire.push_back(wire_packet(1, 0, 100));

  const CaptureFeatures f = extract_features(wire);
  ASSERT_EQ(f.packets.size(), 4u);
  EXPECT_EQ(f.packets[3].extended_sequence - f.packets[0].extended_sequence,
            3);
  EXPECT_EQ(f.expected_packets, 4u);
  EXPECT_DOUBLE_EQ(f.loss_rate_est, 0.0);
}

TEST(AnalysisFeatures, EstimatesLossFromSequenceGaps) {
  std::vector<net::WireRtpPacket> wire;
  for (std::uint16_t s = 0; s < 10; ++s) {
    if (s == 3 || s == 7) continue;  // two packets the snooper missed.
    wire.push_back(wire_packet(s, 0, 100));
  }
  const CaptureFeatures f = extract_features(wire);
  EXPECT_EQ(f.expected_packets, 10u);
  EXPECT_DOUBLE_EQ(f.loss_rate_est, 0.2);
}

TEST(AnalysisFeatures, StripsReadablePadTrailerOnly) {
  // Cleartext padded packet: P bit set, marker clear, trailer readable.
  auto readable = wire_packet(0, 0, 100, /*marker=*/false, /*padding=*/true);
  readable.payload.back() = 25;
  // Encrypted padded packet: the marker says the trailer is ciphertext.
  auto encrypted = wire_packet(1, 0, 100, /*marker=*/true, /*padding=*/true);
  encrypted.payload.back() = 25;
  // P bit set but the count is inconsistent with the payload size.
  auto bogus = wire_packet(2, 0, 100, /*marker=*/false, /*padding=*/true);
  bogus.payload.back() = 0;

  const CaptureFeatures f =
      extract_features(std::vector<net::WireRtpPacket>{
          readable, encrypted, bogus});
  ASSERT_EQ(f.packets.size(), 3u);
  EXPECT_EQ(f.packets[0].inferred_content_bytes, 75u);
  EXPECT_EQ(f.packets[1].inferred_content_bytes, 100u);
  EXPECT_EQ(f.packets[2].inferred_content_bytes, 100u);
  EXPECT_DOUBLE_EQ(f.padding_bit_fraction, 1.0);
}

TEST(AnalysisFeatures, MarkerFractionIsTheVisibleEncryptionFingerprint) {
  std::vector<net::WireRtpPacket> wire;
  wire.push_back(wire_packet(0, 0, 100, /*marker=*/true));
  wire.push_back(wire_packet(1, 0, 100, /*marker=*/false));
  wire.push_back(wire_packet(2, 0, 100, /*marker=*/true));
  wire.push_back(wire_packet(3, 0, 100, /*marker=*/false));
  const CaptureFeatures f = extract_features(wire);
  EXPECT_DOUBLE_EQ(f.marker_fraction, 0.5);
  EXPECT_DOUBLE_EQ(f.frames[0].marker_fraction, 0.5);
}

TEST(AnalysisFeatures, RawCaptureOverloadSkipsNonRtpDatagrams) {
  net::RtpHeader header;
  header.sequence_number = 7;
  header.timestamp = 90;
  std::vector<std::uint8_t> datagram(net::RtpHeader::kSize + 40, 0xAB);
  (void)header.write_to(datagram);

  std::vector<net::RawCapture> captures;
  captures.push_back({0.5, datagram});
  captures.push_back({0.6, {0xde, 0xad}});  // not RTP: skipped.

  const CaptureFeatures f = extract_features(captures);
  ASSERT_EQ(f.packets.size(), 1u);
  EXPECT_EQ(f.packets[0].extended_sequence, 7);
  EXPECT_EQ(f.packets[0].wire_payload_bytes, 40u);
  EXPECT_DOUBLE_EQ(f.packets[0].capture_time_s, 0.5);
}

// Satellite check: per-datagram capture timestamps survive the pcap
// round trip at microsecond precision — they are written as sub-second
// microseconds, not truncated to whole seconds, so the adversary's
// trajectory windows line up with the TraceSink clock the tap shares.
TEST(AnalysisFeatures, TapPcapTimestampsKeepMicrosecondPrecision) {
  live::EavesdropperTap tap{nullptr};
  net::RtpHeader header;
  std::vector<std::uint8_t> datagram(net::RtpHeader::kSize + 8, 0);
  const double times[] = {0.000001, 1.234567, 12.999999, 33.300033};
  for (std::size_t i = 0; i < 4; ++i) {
    header.sequence_number = static_cast<std::uint16_t>(i);
    (void)header.write_to(datagram);
    tap.hear(times[i], datagram);
  }

  const std::string path =
      testing::TempDir() + "tv_analysis_tap_timestamps.pcap";
  ASSERT_EQ(tap.write_pcap(path), 0u);
  const net::PcapFile capture = net::read_pcap_file(path);
  std::remove(path.c_str());
  ASSERT_EQ(capture.records.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(capture.records[i].timestamp_s, times[i], 5e-7)
        << "record " << i << " lost sub-second precision";
    const double frac =
        times[i] - static_cast<double>(static_cast<long>(times[i]));
    if (frac > 1e-6) {
      EXPECT_GT(capture.records[i].timestamp_s,
                static_cast<double>(static_cast<long>(times[i])))
          << "record " << i << " was truncated to whole seconds";
    }
  }
}

}  // namespace
}  // namespace tv::analysis
