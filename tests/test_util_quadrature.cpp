#include "util/quadrature.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

namespace tv::util {
namespace {

TEST(GaussLegendre, WeightsSumToIntervalLength) {
  const QuadratureRule rule = gauss_legendre(16, -2.0, 5.0);
  double total = 0.0;
  for (double w : rule.weights) total += w;
  EXPECT_NEAR(total, 7.0, 1e-12);
}

TEST(GaussLegendre, NodesInsideInterval) {
  const QuadratureRule rule = gauss_legendre(12, 1.0, 3.0);
  for (double x : rule.nodes) {
    EXPECT_GT(x, 1.0);
    EXPECT_LT(x, 3.0);
  }
}

TEST(Integrate, PolynomialExactness) {
  // An n-point rule integrates polynomials up to degree 2n-1 exactly.
  const auto f = [](double x) { return 3.0 * x * x * x - x + 2.0; };
  EXPECT_NEAR(integrate(f, 0.0, 2.0, 2), 12.0 - 2.0 + 4.0, 1e-12);
}

TEST(Integrate, SineOverHalfPeriod) {
  EXPECT_NEAR(integrate([](double x) { return std::sin(x); }, 0.0,
                        std::numbers::pi, 24),
              2.0, 1e-12);
}

TEST(Integrate, GaussianDensityNormalizes) {
  const auto density = [](double x) {
    return std::exp(-0.5 * x * x) / std::sqrt(2.0 * std::numbers::pi);
  };
  EXPECT_NEAR(integrate(density, -8.0, 8.0, 64), 1.0, 1e-10);
}

TEST(GaussLegendre, RejectsBadOrder) {
  EXPECT_THROW((void)gauss_legendre(0, 0.0, 1.0), std::invalid_argument);
}

}  // namespace
}  // namespace tv::util
