// Pinned end-to-end test for the live loopback testbed: the real-socket
// path must reproduce the in-memory transfer it replays, and the
// wire-level eavesdropper must do measurably worse than the receiver.
#include "live/loopback.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <sstream>
#include <string>

#include "core/trace.hpp"
#include "net/pcap.hpp"
#include "policy/policy.hpp"

namespace tv::live {
namespace {

LoopbackConfig base_config() {
  LoopbackConfig config;
  config.motion = video::MotionLevel::kLow;
  config.gop_size = 16;
  config.frames = 32;
  config.policy =
      policy::policy_from_string("I", crypto::Algorithm::kAes128);
  config.seed = 1;
  return config;
}

TEST(LiveLoopback, ReplayMatchesInMemoryAndDegradesTheEavesdropper) {
  const LoopbackReport r = run_loopback(base_config());

  // The acceptance bar: the live receiver, fed by real datagrams through
  // the proxy, lands within 0.1 dB of the in-memory twin on the same
  // seed and policy...
  EXPECT_NEAR(r.live_receiver_psnr_db, r.memory_receiver_psnr_db, 0.1);
  EXPECT_NEAR(r.live_eavesdropper_psnr_db, r.memory_eavesdropper_psnr_db,
              0.1);
  // ...and with I-frames-only encryption the wire eavesdropper sits at
  // least 10 dB below the keyed receiver.
  EXPECT_LE(r.live_eavesdropper_psnr_db, r.live_receiver_psnr_db - 10.0);

  // Conservation through the roles.
  EXPECT_GT(r.packet_count, 0u);
  EXPECT_EQ(r.sender.packets_sent, r.packet_count);
  EXPECT_EQ(r.proxy.heard, r.packet_count);
  EXPECT_EQ(r.proxy.forwarded + r.proxy.dropped, r.proxy.heard);
  EXPECT_EQ(r.receiver.accepted, r.proxy.forwarded);
  EXPECT_LE(r.tap.captured, r.tap.heard);
  EXPECT_GT(r.encryption.encrypted_packets, 0u);
  EXPECT_LT(r.encryption.encrypted_packets, r.encryption.total_packets);
}

TEST(LiveLoopback, RunsArePureFunctionsOfTheConfig) {
  const LoopbackReport a = run_loopback(base_config());
  const LoopbackReport b = run_loopback(base_config());
  EXPECT_EQ(a.live_receiver_psnr_db, b.live_receiver_psnr_db);
  EXPECT_EQ(a.live_eavesdropper_psnr_db, b.live_eavesdropper_psnr_db);
  EXPECT_EQ(a.sender.packets_sent, b.sender.packets_sent);
  EXPECT_EQ(a.proxy.forwarded, b.proxy.forwarded);
  EXPECT_EQ(a.tap.captured, b.tap.captured);
}

TEST(LiveLoopback, TraceOutputIsByteStableAcrossRuns) {
  auto traced = [] {
    std::ostringstream out;
    core::JsonlTraceSink sink{out};
    LoopbackConfig config = base_config();
    config.trace = &sink;
    (void)run_loopback(config);
    return out.str();
  };
  const std::string a = traced();
  const std::string b = traced();
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
  // The live roles contributed their events, not just the in-memory twin.
  EXPECT_NE(a.find("\"send\""), std::string::npos);
  EXPECT_NE(a.find("\"receive\""), std::string::npos);
  EXPECT_NE(a.find("\"eavesdrop\""), std::string::npos);
}

TEST(LiveLoopback, StochasticModeIsDeterministicInTheSeed) {
  auto config_with_seed = [](std::uint64_t seed) {
    LoopbackConfig config = base_config();
    config.stochastic = true;
    config.seed = seed;
    net::FaultPlan faults;
    faults.drop_prob = 0.08;
    faults.duplicate_prob = 0.05;
    faults.reorder_prob = 0.1;
    config.faults = faults;
    wifi::GilbertElliottParams ev;
    ev.mean_loss_prob = 0.2;
    ev.mean_burst_length = 3.0;
    config.eavesdropper_channel = ev;
    return config;
  };
  const LoopbackReport a = run_loopback(config_with_seed(7));
  const LoopbackReport b = run_loopback(config_with_seed(7));
  EXPECT_EQ(a.live_receiver_psnr_db, b.live_receiver_psnr_db);
  EXPECT_EQ(a.live_eavesdropper_psnr_db, b.live_eavesdropper_psnr_db);
  EXPECT_EQ(a.proxy.dropped, b.proxy.dropped);
  EXPECT_EQ(a.proxy.duplicated, b.proxy.duplicated);
  EXPECT_EQ(a.proxy.reordered, b.proxy.reordered);
  EXPECT_EQ(a.tap.captured, b.tap.captured);
  EXPECT_GT(a.proxy.dropped, 0u);  // the impairments really ran.
  EXPECT_LT(a.tap.captured, a.tap.heard);

  const LoopbackReport c = run_loopback(config_with_seed(8));
  EXPECT_NE(std::make_tuple(a.proxy.dropped, a.proxy.duplicated,
                            a.tap.captured, a.live_receiver_psnr_db),
            std::make_tuple(c.proxy.dropped, c.proxy.duplicated,
                            c.tap.captured, c.live_receiver_psnr_db));
}

TEST(LiveLoopback, EavesdropperPcapRoundTripsThroughTheReader) {
  LoopbackConfig config = base_config();
  config.pcap_path = testing::TempDir() + "live_loopback_tap.pcap";
  const LoopbackReport r = run_loopback(config);
  EXPECT_EQ(r.pcap_clamped, 0u);

  const net::PcapFile file = net::read_pcap_file(config.pcap_path);
  EXPECT_EQ(file.records.size(), r.tap.captured);
  EXPECT_EQ(file.oversized_records, 0u);
  const auto rtp = net::extract_rtp(file);
  ASSERT_EQ(rtp.size(), r.tap.captured);
  // The capture shows the paper's signal: marker bits flag exactly the
  // still-encrypted payloads, and some of both kinds were overheard.
  std::size_t marked = 0;
  for (const auto& p : rtp) marked += p.header.marker ? 1u : 0u;
  EXPECT_GT(marked, 0u);
  EXPECT_LT(marked, rtp.size());
  std::remove(config.pcap_path.c_str());
}

}  // namespace
}  // namespace tv::live
