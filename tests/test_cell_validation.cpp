// The fixed-point-vs-DES cross-check grid behind `thriftyvid cell
// --validate` (docs/cell.md): cell enumeration, acceptance bands, the CI
// gate grid itself and the runner's ordering/threading contract.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "cell/validation.hpp"
#include "util/thread_pool.hpp"

namespace tv::cell {
namespace {

CellValidationSpec tiny_spec() {
  CellValidationSpec spec;
  spec.contenders = {2, 3};
  spec.cw_mins = {16};
  spec.stage_counts = {6};
  spec.slots = 120000;
  spec.warmup = 8000;
  return spec;
}

TEST(CellValidationSpec, DefaultGridMeetsTheAcceptanceFloor) {
  const CellValidationSpec spec;
  EXPECT_GE(spec.cell_count(), 12u);  // the ISSUE's CI-gate floor.
  EXPECT_EQ(enumerate_validation_cells(spec).size(), spec.cell_count());
}

TEST(CellValidationSpec, RejectsBadSpecs) {
  CellValidationSpec spec = tiny_spec();
  spec.contenders = {};
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec = tiny_spec();
  spec.contenders = {0};
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec = tiny_spec();
  spec.slots = 0;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec = tiny_spec();
  spec.z = 0.0;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
}

TEST(CellValidationSpec, EnumerationIsRowMajorWithDerivedSeeds) {
  CellValidationSpec spec = tiny_spec();
  spec.cw_mins = {16, 32};
  const auto cells = enumerate_validation_cells(spec);
  ASSERT_EQ(cells.size(), 4u);
  EXPECT_EQ(cells[0].contenders, 2);
  EXPECT_EQ(cells[0].cw_min, 16);
  EXPECT_EQ(cells[1].cw_min, 32);
  EXPECT_EQ(cells[2].contenders, 3);
  EXPECT_NE(cells[0].seed, cells[1].seed);
  EXPECT_EQ(cells[3].index, 3u);
}

TEST(CellValidation, SingleCellPassesItsBands) {
  const CellValidationSpec spec = tiny_spec();
  const auto cells = enumerate_validation_cells(spec);
  const CellValidationCellResult r =
      run_cell_validation_cell(spec, cells[0]);
  // One video class: tau, p and the cell-wide success fraction.
  ASSERT_EQ(r.checks.size(), 3u);
  EXPECT_TRUE(r.passed()) << "n=" << r.cell.contenders;
  for (const CellValidationCheck& c : r.checks) {
    EXPECT_GT(c.tolerance, 0.0) << c.name;
    EXPECT_LE(std::abs(c.simulated - c.analytic), c.tolerance) << c.name;
  }
}

TEST(CellValidation, BackgroundClassAddsItsOwnChecks) {
  CellValidationSpec spec = tiny_spec();
  spec.background_stations = 3;
  const auto cells = enumerate_validation_cells(spec);
  const CellValidationCellResult r =
      run_cell_validation_cell(spec, cells[0]);
  // Two classes: tau and p for each, plus the success fraction.
  ASSERT_EQ(r.checks.size(), 5u);
  EXPECT_TRUE(r.passed());
}

// The CI gate itself: the full default grid — 16 cells from light to heavy
// contention at two window geometries — must hold every band.  This is the
// same grid `thriftyvid cell --validate` exits 0 on.
TEST(CellValidation, DefaultGridAllCellsPass) {
  const CellValidationSpec spec;
  util::ThreadPool pool{4};
  CellValidationRunner runner{&pool};
  CellValidationCollectSink sink;
  const CellValidationSummary summary = runner.run(spec, sink);
  EXPECT_EQ(summary.cells, spec.cell_count());
  EXPECT_EQ(summary.failed_checks, 0u);
  EXPECT_TRUE(summary.all_passed());
  for (const CellValidationCellResult& r : sink.results) {
    EXPECT_TRUE(r.passed()) << "cell " << r.cell.index << " (n="
                            << r.cell.contenders << " W=" << r.cell.cw_min
                            << " m=" << r.cell.stages << ")";
  }
}

TEST(CellValidation, RunnerOutputIsThreadInvariant) {
  const CellValidationSpec spec = tiny_spec();

  std::ostringstream serial;
  {
    CellValidationJsonlSink sink{serial};
    CellValidationRunner runner;
    const auto summary = runner.run(spec, sink);
    EXPECT_EQ(summary.threads, 1u);
  }

  std::ostringstream pooled;
  {
    util::ThreadPool pool{8};
    CellValidationJsonlSink sink{pooled};
    CellValidationRunner runner{&pool};
    const auto summary = runner.run(spec, sink);
    EXPECT_EQ(summary.threads, 8u);
  }

  EXPECT_EQ(serial.str(), pooled.str());
  EXPECT_FALSE(serial.str().empty());
}

TEST(CellValidation, JsonlSinkEmitsOneObjectPerCell) {
  const CellValidationSpec spec = tiny_spec();
  std::ostringstream out;
  CellValidationJsonlSink sink{out};
  CellValidationRunner runner;
  (void)runner.run(spec, sink);
  const std::string s = out.str();
  std::size_t lines = 0;
  for (char c : s) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, spec.cell_count());
  EXPECT_NE(s.find("\"checks\":["), std::string::npos);
  EXPECT_NE(s.find("\"passed\":true"), std::string::npos);
}

}  // namespace
}  // namespace tv::cell
