#include "video/y4m.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "video/scene.hpp"

namespace tv::video {
namespace {

FrameSequence tiny_clip(int frames) {
  SceneParameters p = SceneParameters::preset(MotionLevel::kMedium);
  p.width = 64;
  p.height = 48;
  return SceneGenerator{p, 9}.render_clip(frames);
}

TEST(Y4m, HeaderFormat) {
  const auto clip = tiny_clip(1);
  std::ostringstream out;
  write_y4m(out, clip, 25);
  const std::string s = out.str();
  EXPECT_EQ(s.rfind("YUV4MPEG2 W64 H48 F25:1 Ip A1:1 C420\n", 0), 0u);
  // Header + per-frame "FRAME\n" + planar payload.
  const std::size_t frame_bytes = 64 * 48 + 2 * (32 * 24);
  EXPECT_EQ(s.size(), 37u + 6u + frame_bytes);
}

TEST(Y4m, RoundtripPreservesEveryPixel) {
  const auto clip = tiny_clip(5);
  std::stringstream io;
  write_y4m(io, clip, 30);
  const Y4mClip back = read_y4m(io);
  ASSERT_EQ(back.frames.size(), clip.size());
  EXPECT_EQ(back.fps_numerator, 30);
  EXPECT_EQ(back.fps_denominator, 1);
  for (std::size_t i = 0; i < clip.size(); ++i) {
    EXPECT_EQ(back.frames[i].y_plane(), clip[i].y_plane());
    EXPECT_EQ(back.frames[i].u_plane(), clip[i].u_plane());
    EXPECT_EQ(back.frames[i].v_plane(), clip[i].v_plane());
  }
}

TEST(Y4m, AcceptsChromaSitingVariants) {
  const auto clip = tiny_clip(1);
  std::ostringstream out;
  write_y4m(out, clip);
  std::string s = out.str();
  const auto pos = s.find("C420");
  s.replace(pos, 4, "C420jpeg");
  std::istringstream in{s};
  EXPECT_EQ(read_y4m(in).frames.size(), 1u);
}

TEST(Y4m, RejectsBadStreams) {
  std::istringstream not_y4m{"RIFFxxxx"};
  EXPECT_THROW((void)read_y4m(not_y4m), std::runtime_error);

  std::istringstream wrong_chroma{"YUV4MPEG2 W64 H48 F30:1 C444\nFRAME\n"};
  EXPECT_THROW((void)read_y4m(wrong_chroma), std::runtime_error);

  std::istringstream no_frames{"YUV4MPEG2 W64 H48 F30:1 C420\n"};
  EXPECT_THROW((void)read_y4m(no_frames), std::runtime_error);

  // Truncated payload.
  std::ostringstream out;
  write_y4m(out, tiny_clip(1));
  std::string s = out.str();
  s.resize(s.size() - 100);
  std::istringstream truncated{s};
  EXPECT_THROW((void)read_y4m(truncated), std::runtime_error);

  // Codec-incompatible dimensions.
  std::istringstream odd{"YUV4MPEG2 W60 H48 F30:1 C420\nFRAME\n"};
  EXPECT_THROW((void)read_y4m(odd), std::runtime_error);
}

TEST(Y4m, WriteValidatesInput) {
  EXPECT_THROW((void)write_y4m_file("/nonexistent-dir/x.y4m", tiny_clip(1)),
               std::runtime_error);
  std::ostringstream out;
  EXPECT_THROW((void)write_y4m(out, {}, 30), std::invalid_argument);
  EXPECT_THROW((void)write_y4m(out, tiny_clip(1), 0), std::invalid_argument);
}

}  // namespace
}  // namespace tv::video
