#include "live/event_loop.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "live/udp.hpp"

namespace tv::live {
namespace {

TEST(EventLoop, VirtualClockFiresTimersInDeadlineOrder) {
  EventLoop loop{ClockMode::kVirtual};
  std::vector<int> fired;
  std::vector<double> at;
  loop.schedule_at(0.3, [&] { fired.push_back(3); at.push_back(loop.now_s()); });
  loop.schedule_at(0.1, [&] { fired.push_back(1); at.push_back(loop.now_s()); });
  loop.schedule_at(0.2, [&] { fired.push_back(2); at.push_back(loop.now_s()); });
  loop.run();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
  // The virtual clock sat exactly on each deadline when it fired.
  ASSERT_EQ(at.size(), 3u);
  EXPECT_DOUBLE_EQ(at[0], 0.1);
  EXPECT_DOUBLE_EQ(at[1], 0.2);
  EXPECT_DOUBLE_EQ(at[2], 0.3);
}

TEST(EventLoop, EqualDeadlinesFireInSchedulingOrder) {
  EventLoop loop{ClockMode::kVirtual};
  std::vector<int> fired;
  for (int i = 0; i < 5; ++i) {
    loop.schedule_at(1.0, [&fired, i] { fired.push_back(i); });
  }
  loop.run();
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventLoop, CancelPreventsFiring) {
  EventLoop loop{ClockMode::kVirtual};
  bool cancelled_ran = false;
  bool kept_ran = false;
  const auto id = loop.schedule_at(0.5, [&] { cancelled_ran = true; });
  loop.schedule_at(0.6, [&] { kept_ran = true; });
  loop.cancel(id);
  loop.run();
  EXPECT_FALSE(cancelled_ran);
  EXPECT_TRUE(kept_ran);
}

TEST(EventLoop, IdleLoopReturnsImmediately) {
  EventLoop loop{ClockMode::kVirtual};
  loop.run();  // nothing scheduled, nothing watched: must not hang.
  EXPECT_DOUBLE_EQ(loop.now_s(), 0.0);
}

TEST(EventLoop, PastDeadlinesNeverMoveTheClockBackwards) {
  EventLoop loop{ClockMode::kVirtual};
  std::vector<double> at;
  loop.schedule_at(2.0, [&] {
    at.push_back(loop.now_s());
    // Scheduled in the past relative to the current virtual time.
    loop.schedule_at(1.0, [&] { at.push_back(loop.now_s()); });
  });
  loop.run();
  ASSERT_EQ(at.size(), 2u);
  EXPECT_DOUBLE_EQ(at[0], 2.0);
  EXPECT_DOUBLE_EQ(at[1], 2.0);  // fired immediately, clock held.
}

TEST(EventLoop, StopReturnsBeforeRemainingTimers) {
  EventLoop loop{ClockMode::kVirtual};
  bool later_ran = false;
  loop.schedule_at(0.1, [&] { loop.stop(); });
  loop.schedule_at(0.2, [&] { later_ran = true; });
  loop.run();
  EXPECT_FALSE(later_ran);
  // The pending timer survives a stop; a second run() picks it up.
  loop.run();
  EXPECT_TRUE(later_ran);
}

TEST(EventLoop, TimersDriveSocketsDeterministically) {
  // A sender timer writes one datagram per deadline; the watcher reads it
  // back with the virtual clock sitting exactly on the send time.
  EventLoop loop{ClockMode::kVirtual};
  UdpSocket tx;
  tx.bind(Endpoint{});
  UdpSocket rx;
  rx.bind(Endpoint{});
  const Endpoint to = rx.local_endpoint();

  std::vector<std::pair<double, std::uint8_t>> received;
  loop.watch_readable(rx.fd(), [&] {
    while (auto d = rx.receive()) {
      received.emplace_back(loop.now_s(), d->payload.at(0));
    }
    if (received.size() == 3) loop.unwatch(rx.fd());
  });
  for (std::uint8_t i = 0; i < 3; ++i) {
    loop.schedule_at(0.25 * (i + 1), [&tx, to, i] {
      const std::uint8_t byte[] = {i};
      ASSERT_TRUE(tx.send_to(to, byte));
    });
  }
  loop.run();
  ASSERT_EQ(received.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(received[i].second, i);
    // I/O drains before the clock advances to the next deadline, so each
    // datagram is read at its own send time.
    EXPECT_DOUBLE_EQ(received[i].first, 0.25 * (i + 1));
  }
}

TEST(EventLoop, PumpDrainsReadableWithoutAdvancingClock) {
  EventLoop loop{ClockMode::kVirtual};
  UdpSocket tx;
  tx.bind(Endpoint{});
  UdpSocket rx;
  rx.bind(Endpoint{});
  const std::uint8_t byte[] = {42};
  ASSERT_TRUE(tx.send_to(rx.local_endpoint(), byte));

  int reads = 0;
  loop.watch_readable(rx.fd(), [&] {
    while (rx.receive()) ++reads;
  });
  EXPECT_GE(loop.pump(), 1u);
  EXPECT_EQ(reads, 1);
  EXPECT_DOUBLE_EQ(loop.now_s(), 0.0);
  EXPECT_EQ(loop.pump(), 0u);  // nothing left.
}

TEST(Udp, ParseEndpointAcceptsTheThreeForms) {
  const auto full = parse_endpoint("192.168.1.2:5004");
  ASSERT_TRUE(full.has_value());
  EXPECT_EQ(full->ip, 0xC0A80102u);
  EXPECT_EQ(full->port, 5004);
  EXPECT_EQ(full->to_string(), "192.168.1.2:5004");

  const auto port_only = parse_endpoint(":7000");
  ASSERT_TRUE(port_only.has_value());
  EXPECT_EQ(port_only->ip, 0x7f000001u);
  EXPECT_EQ(port_only->port, 7000);

  const auto bare = parse_endpoint("7000");
  ASSERT_TRUE(bare.has_value());
  EXPECT_EQ(*bare, *port_only);

  EXPECT_FALSE(parse_endpoint(""));
  EXPECT_FALSE(parse_endpoint("not-an-endpoint"));
  EXPECT_FALSE(parse_endpoint("10.0.0.1:notaport"));
  EXPECT_FALSE(parse_endpoint("10.0.0.1:99999"));
}

TEST(Udp, RoundTripsADatagramAndReportsSource) {
  UdpSocket a;
  a.bind(Endpoint{});
  UdpSocket b;
  b.bind(Endpoint{});
  const std::vector<std::uint8_t> payload = {1, 2, 3, 4, 5};
  ASSERT_TRUE(a.send_to(b.local_endpoint(), payload));
  // Non-blocking: the loopback queue makes it visible immediately.
  std::optional<Datagram> got;
  for (int spins = 0; spins < 1000 && !got; ++spins) got = b.receive();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->payload, payload);
  EXPECT_EQ(got->from, a.local_endpoint());
  EXPECT_FALSE(b.receive().has_value());  // queue drained.
}

}  // namespace
}  // namespace tv::live
