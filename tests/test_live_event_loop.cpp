#include "live/event_loop.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "live/udp.hpp"

namespace tv::live {
namespace {

TEST(EventLoop, VirtualClockFiresTimersInDeadlineOrder) {
  EventLoop loop{ClockMode::kVirtual};
  std::vector<int> fired;
  std::vector<double> at;
  loop.schedule_at(0.3, [&] { fired.push_back(3); at.push_back(loop.now_s()); });
  loop.schedule_at(0.1, [&] { fired.push_back(1); at.push_back(loop.now_s()); });
  loop.schedule_at(0.2, [&] { fired.push_back(2); at.push_back(loop.now_s()); });
  loop.run();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
  // The virtual clock sat exactly on each deadline when it fired.
  ASSERT_EQ(at.size(), 3u);
  EXPECT_DOUBLE_EQ(at[0], 0.1);
  EXPECT_DOUBLE_EQ(at[1], 0.2);
  EXPECT_DOUBLE_EQ(at[2], 0.3);
}

TEST(EventLoop, EqualDeadlinesFireInSchedulingOrder) {
  EventLoop loop{ClockMode::kVirtual};
  std::vector<int> fired;
  for (int i = 0; i < 5; ++i) {
    loop.schedule_at(1.0, [&fired, i] { fired.push_back(i); });
  }
  loop.run();
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventLoop, CancelPreventsFiring) {
  EventLoop loop{ClockMode::kVirtual};
  bool cancelled_ran = false;
  bool kept_ran = false;
  const auto id = loop.schedule_at(0.5, [&] { cancelled_ran = true; });
  loop.schedule_at(0.6, [&] { kept_ran = true; });
  loop.cancel(id);
  loop.run();
  EXPECT_FALSE(cancelled_ran);
  EXPECT_TRUE(kept_ran);
}

TEST(EventLoop, IdleLoopReturnsImmediately) {
  EventLoop loop{ClockMode::kVirtual};
  loop.run();  // nothing scheduled, nothing watched: must not hang.
  EXPECT_DOUBLE_EQ(loop.now_s(), 0.0);
}

TEST(EventLoop, PastDeadlinesNeverMoveTheClockBackwards) {
  EventLoop loop{ClockMode::kVirtual};
  std::vector<double> at;
  loop.schedule_at(2.0, [&] {
    at.push_back(loop.now_s());
    // Scheduled in the past relative to the current virtual time.
    loop.schedule_at(1.0, [&] { at.push_back(loop.now_s()); });
  });
  loop.run();
  ASSERT_EQ(at.size(), 2u);
  EXPECT_DOUBLE_EQ(at[0], 2.0);
  EXPECT_DOUBLE_EQ(at[1], 2.0);  // fired immediately, clock held.
}

TEST(EventLoop, StopReturnsBeforeRemainingTimers) {
  EventLoop loop{ClockMode::kVirtual};
  bool later_ran = false;
  loop.schedule_at(0.1, [&] { loop.stop(); });
  loop.schedule_at(0.2, [&] { later_ran = true; });
  loop.run();
  EXPECT_FALSE(later_ran);
  // The pending timer survives a stop; a second run() picks it up.
  loop.run();
  EXPECT_TRUE(later_ran);
}

TEST(EventLoop, TimersDriveSocketsDeterministically) {
  // A sender timer writes one datagram per deadline; the watcher reads it
  // back with the virtual clock sitting exactly on the send time.
  EventLoop loop{ClockMode::kVirtual};
  UdpSocket tx;
  tx.bind(Endpoint{});
  UdpSocket rx;
  rx.bind(Endpoint{});
  const Endpoint to = rx.local_endpoint();

  std::vector<std::pair<double, std::uint8_t>> received;
  loop.watch_readable(rx.fd(), [&] {
    while (auto d = rx.receive()) {
      received.emplace_back(loop.now_s(), d->payload.at(0));
    }
    if (received.size() == 3) loop.unwatch(rx.fd());
  });
  for (std::uint8_t i = 0; i < 3; ++i) {
    loop.schedule_at(0.25 * (i + 1), [&tx, to, i] {
      const std::uint8_t byte[] = {i};
      ASSERT_EQ(tx.send_to(to, byte), SendOutcome::kSent);
    });
  }
  loop.run();
  ASSERT_EQ(received.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(received[i].second, i);
    // I/O drains before the clock advances to the next deadline, so each
    // datagram is read at its own send time.
    EXPECT_DOUBLE_EQ(received[i].first, 0.25 * (i + 1));
  }
}

TEST(EventLoop, PumpDrainsReadableWithoutAdvancingClock) {
  EventLoop loop{ClockMode::kVirtual};
  UdpSocket tx;
  tx.bind(Endpoint{});
  UdpSocket rx;
  rx.bind(Endpoint{});
  const std::uint8_t byte[] = {42};
  ASSERT_EQ(tx.send_to(rx.local_endpoint(), byte), SendOutcome::kSent);

  int reads = 0;
  loop.watch_readable(rx.fd(), [&] {
    while (rx.receive()) ++reads;
  });
  EXPECT_GE(loop.pump(), 1u);
  EXPECT_EQ(reads, 1);
  EXPECT_DOUBLE_EQ(loop.now_s(), 0.0);
  EXPECT_EQ(loop.pump(), 0u);  // nothing left.
}

#ifdef __linux__
TEST(EventLoop, AutoBackendResolvesToEpollOnLinux) {
  EventLoop loop{ClockMode::kVirtual};
  EXPECT_EQ(loop.backend(), PollBackend::kEpoll);
  EventLoop forced{ClockMode::kVirtual, PollBackend::kPoll};
  EXPECT_EQ(forced.backend(), PollBackend::kPoll);
  EventLoop epoll{ClockMode::kVirtual, PollBackend::kEpoll};
  EXPECT_EQ(epoll.backend(), PollBackend::kEpoll);
}
#endif

// Both backends must dispatch identically: the same timer/socket script
// yields the same receive timeline, byte for byte.
void run_backend_script(PollBackend backend,
                        std::vector<std::pair<double, std::uint8_t>>* out) {
  EventLoop loop{ClockMode::kVirtual, backend};
  UdpSocket tx;
  tx.bind(Endpoint{});
  UdpSocket rx;
  rx.bind(Endpoint{});
  const Endpoint to = rx.local_endpoint();
  loop.watch_readable(rx.fd(), [&] {
    while (auto d = rx.receive()) {
      out->emplace_back(loop.now_s(), d->payload.at(0));
    }
  });
  for (std::uint8_t i = 0; i < 4; ++i) {
    loop.schedule_at(0.1 * (i + 1), [&tx, to, i] {
      const std::uint8_t byte[] = {static_cast<std::uint8_t>(i * 3)};
      ASSERT_EQ(tx.send_to(to, byte), SendOutcome::kSent);
    });
  }
  loop.schedule_at(0.45, [&] { loop.unwatch(rx.fd()); });
  loop.run();
}

TEST(EventLoop, PollAndEpollBackendsDispatchIdentically) {
  std::vector<std::pair<double, std::uint8_t>> via_poll;
  run_backend_script(PollBackend::kPoll, &via_poll);
  ASSERT_EQ(via_poll.size(), 4u);
#ifdef __linux__
  std::vector<std::pair<double, std::uint8_t>> via_epoll;
  run_backend_script(PollBackend::kEpoll, &via_epoll);
  EXPECT_EQ(via_poll, via_epoll);
#endif
}

TEST(EventLoop, MonotonicFutureTimerSleepsInsteadOfSpinning) {
  // No watchers, one future deadline: the loop must block in the kernel
  // wait until the deadline, not spin through poll_once returning 0.
  EventLoop loop{ClockMode::kMonotonic};
  bool fired = false;
  loop.schedule_after(0.05, [&] { fired = true; });
  loop.run();
  EXPECT_TRUE(fired);
  EXPECT_GE(loop.now_s(), 0.05);
  // A spinning loop would take tens of thousands of rounds over 50 ms.
  EXPECT_LE(loop.poll_rounds(), 10u);
}

TEST(EventLoop, MonotonicPastDeadlineFiresImmediatelyWithoutSpin) {
  EventLoop loop{ClockMode::kMonotonic};
  std::vector<int> fired;
  loop.schedule_at(-1.0, [&] { fired.push_back(1); });
  loop.schedule_at(-0.5, [&] { fired.push_back(2); });
  loop.run();
  EXPECT_EQ(fired, (std::vector<int>{1, 2}));
  EXPECT_LE(loop.now_s(), 1.0);  // did not wait for anything.
  EXPECT_LE(loop.poll_rounds(), 10u);
}

TEST(EventLoop, CancelledTimerInSameDueBatchNeverFires) {
  // Both timers are due in the same monotonic dispatch batch; the first
  // cancels the second, which must then never run.
  EventLoop loop{ClockMode::kMonotonic};
  bool second_ran = false;
  EventLoop::TimerId second = 0;
  loop.schedule_at(-1.0, [&] { loop.cancel(second); });
  second = loop.schedule_at(-1.0, [&] { second_ran = true; });
  loop.run();
  EXPECT_FALSE(second_ran);
}

TEST(EventLoop, VirtualClockDrainsIoBeforePastDeadlineTimers) {
  // A datagram is already queued when run() starts, and a timer is due
  // in the past.  The I/O drain must still happen before the jump — the
  // read callback runs first, at clock 0.
  EventLoop loop{ClockMode::kVirtual};
  UdpSocket tx;
  tx.bind(Endpoint{});
  UdpSocket rx;
  rx.bind(Endpoint{});
  const std::uint8_t byte[] = {7};
  ASSERT_EQ(tx.send_to(rx.local_endpoint(), byte), SendOutcome::kSent);

  std::vector<std::string> order;
  loop.watch_readable(rx.fd(), [&] {
    while (rx.receive()) order.push_back("read@" + std::to_string(loop.now_s()));
    loop.unwatch(rx.fd());
  });
  loop.schedule_at(0.0, [&] { order.push_back("timer"); });
  loop.run();
  EXPECT_EQ(order,
            (std::vector<std::string>{"read@0.000000", "timer"}));
}

TEST(Udp, SendOutcomeToStringCoversEveryValue) {
  EXPECT_STREQ(to_string(SendOutcome::kSent), "sent");
  EXPECT_STREQ(to_string(SendOutcome::kAgain), "again");
  EXPECT_STREQ(to_string(SendOutcome::kRefused), "refused");
  EXPECT_STREQ(to_string(SendOutcome::kShort), "short");
}

TEST(Udp, RefusedDestinationIsCountedNotFatal) {
  // A UDP send to a closed loopback port triggers an ICMP port-unreachable
  // that surfaces as ECONNREFUSED on a connected socket.  The wrapper must
  // absorb it (count + kRefused), never throw.  ICMP delivery is kernel-
  // dependent, so the test only asserts the strong property when the error
  // actually arrives.
  Endpoint closed;
  {
    UdpSocket probe;  // grab an ephemeral port, then free it.
    probe.bind(Endpoint{});
    closed = probe.local_endpoint();
  }
  UdpSocket tx;
  tx.bind(Endpoint{});
  tx.connect(closed);
  bool saw_refused = false;
  const std::uint8_t byte[] = {1};
  for (int i = 0; i < 50 && !saw_refused; ++i) {
    const SendOutcome outcome = tx.send_to(closed, byte);
    EXPECT_TRUE(outcome == SendOutcome::kSent ||
                outcome == SendOutcome::kRefused);
    if (outcome == SendOutcome::kRefused) saw_refused = true;
    (void)tx.receive();  // receive() must also absorb queued errors.
  }
  if (saw_refused) {
    EXPECT_GE(tx.refusals(), 1u);
  } else {
    GTEST_SKIP() << "no ICMP port-unreachable surfaced on this kernel";
  }
}

TEST(Udp, ParseEndpointAcceptsTheThreeForms) {
  const auto full = parse_endpoint("192.168.1.2:5004");
  ASSERT_TRUE(full.has_value());
  EXPECT_EQ(full->ip, 0xC0A80102u);
  EXPECT_EQ(full->port, 5004);
  EXPECT_EQ(full->to_string(), "192.168.1.2:5004");

  const auto port_only = parse_endpoint(":7000");
  ASSERT_TRUE(port_only.has_value());
  EXPECT_EQ(port_only->ip, 0x7f000001u);
  EXPECT_EQ(port_only->port, 7000);

  const auto bare = parse_endpoint("7000");
  ASSERT_TRUE(bare.has_value());
  EXPECT_EQ(*bare, *port_only);

  EXPECT_FALSE(parse_endpoint(""));
  EXPECT_FALSE(parse_endpoint("not-an-endpoint"));
  EXPECT_FALSE(parse_endpoint("10.0.0.1:notaport"));
  EXPECT_FALSE(parse_endpoint("10.0.0.1:99999"));
}

TEST(Udp, RoundTripsADatagramAndReportsSource) {
  UdpSocket a;
  a.bind(Endpoint{});
  UdpSocket b;
  b.bind(Endpoint{});
  const std::vector<std::uint8_t> payload = {1, 2, 3, 4, 5};
  ASSERT_EQ(a.send_to(b.local_endpoint(), payload), SendOutcome::kSent);
  // Non-blocking: the loopback queue makes it visible immediately.
  std::optional<Datagram> got;
  for (int spins = 0; spins < 1000 && !got; ++spins) got = b.receive();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->payload, payload);
  EXPECT_EQ(got->from, a.local_endpoint());
  EXPECT_FALSE(b.receive().has_value());  // queue drained.
}

}  // namespace
}  // namespace tv::live
