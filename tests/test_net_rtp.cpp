#include "net/rtp.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace tv::net {
namespace {

TEST(Rtp, SerializedHeaderIsTwelveBytes) {
  const RtpHeader h;
  EXPECT_EQ(h.serialize().size(), RtpHeader::kSize);
}

TEST(Rtp, VersionBitsAndMarker) {
  RtpHeader h;
  h.marker = true;
  h.payload_type = 96;
  const auto bytes = h.serialize();
  EXPECT_EQ(bytes[0] >> 6, 2);          // RTP version 2.
  EXPECT_EQ(bytes[1] & 0x80, 0x80);     // marker set.
  EXPECT_EQ(bytes[1] & 0x7f, 96);       // payload type.
}

class RtpRoundtrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RtpRoundtrip, ParseInvertsSerialize) {
  util::Rng rng{GetParam()};
  RtpHeader h;
  h.marker = rng.bernoulli(0.5);
  h.payload_type = static_cast<std::uint8_t>(rng.uniform_int(128));
  h.sequence_number = static_cast<std::uint16_t>(rng.uniform_int(65536));
  h.timestamp = static_cast<std::uint32_t>(rng());
  h.ssrc = static_cast<std::uint32_t>(rng());
  const auto bytes = h.serialize();
  const RtpHeader back = RtpHeader::parse(bytes);
  EXPECT_EQ(back.marker, h.marker);
  EXPECT_EQ(back.payload_type, h.payload_type);
  EXPECT_EQ(back.sequence_number, h.sequence_number);
  EXPECT_EQ(back.timestamp, h.timestamp);
  EXPECT_EQ(back.ssrc, h.ssrc);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RtpRoundtrip,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

TEST(Rtp, ParseRejectsShortAndWrongVersion) {
  std::vector<std::uint8_t> short_buf(11, 0);
  EXPECT_THROW((void)RtpHeader::parse(short_buf), std::invalid_argument);
  std::vector<std::uint8_t> bad(12, 0);  // version 0.
  EXPECT_THROW((void)RtpHeader::parse(bad), std::invalid_argument);
}

TEST(Rtp, MaxPayloadAccountsForAllHeaders) {
  EXPECT_EQ(max_payload(1500), 1500u - 28u - 12u);
  EXPECT_EQ(max_payload(576), 576u - 40u);
}

}  // namespace
}  // namespace tv::net
