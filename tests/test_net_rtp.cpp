#include "net/rtp.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>

#include "proptest.hpp"
#include "util/rng.hpp"

namespace tv::net {
namespace {

TEST(Rtp, SerializedHeaderIsTwelveBytes) {
  const RtpHeader h;
  EXPECT_EQ(h.serialize().size(), RtpHeader::kSize);
}

TEST(Rtp, VersionBitsAndMarker) {
  RtpHeader h;
  h.marker = true;
  h.payload_type = 96;
  const auto bytes = h.serialize();
  EXPECT_EQ(bytes[0] >> 6, 2);          // RTP version 2.
  EXPECT_EQ(bytes[1] & 0x80, 0x80);     // marker set.
  EXPECT_EQ(bytes[1] & 0x7f, 96);       // payload type.
}

class RtpRoundtrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RtpRoundtrip, ParseInvertsSerialize) {
  util::Rng rng{GetParam()};
  RtpHeader h;
  h.marker = rng.bernoulli(0.5);
  h.padding = rng.bernoulli(0.5);
  h.payload_type = static_cast<std::uint8_t>(rng.uniform_int(128));
  h.sequence_number = static_cast<std::uint16_t>(rng.uniform_int(65536));
  h.timestamp = static_cast<std::uint32_t>(rng());
  h.ssrc = static_cast<std::uint32_t>(rng());
  const auto bytes = h.serialize();
  const RtpHeader back = RtpHeader::parse(bytes);
  EXPECT_EQ(back.marker, h.marker);
  EXPECT_EQ(back.padding, h.padding);
  EXPECT_EQ(back.payload_type, h.payload_type);
  EXPECT_EQ(back.sequence_number, h.sequence_number);
  EXPECT_EQ(back.timestamp, h.timestamp);
  EXPECT_EQ(back.ssrc, h.ssrc);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RtpRoundtrip,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

TEST(Rtp, ParseRejectsShortAndWrongVersion) {
  std::vector<std::uint8_t> short_buf(11, 0);
  EXPECT_THROW((void)RtpHeader::parse(short_buf), std::invalid_argument);
  std::vector<std::uint8_t> bad(12, 0);  // version 0.
  EXPECT_THROW((void)RtpHeader::parse(bad), std::invalid_argument);
}

TEST(Rtp, ParseRejectsCsrcAndExtensionBits) {
  // The fixed-header type cannot represent CSRC lists or extensions;
  // accepting them would silently mis-place the payload boundary.
  std::vector<std::uint8_t> csrc(12, 0);
  csrc[0] = (2 << 6) | 0x02;  // version 2, CC = 2.
  EXPECT_THROW((void)RtpHeader::parse(csrc), std::invalid_argument);
  std::vector<std::uint8_t> ext(12, 0);
  ext[0] = (2 << 6) | 0x10;  // version 2, X = 1.
  EXPECT_THROW((void)RtpHeader::parse(ext), std::invalid_argument);
}

TEST(Rtp, TryParseRoundtripsAndRejectsLikeParse) {
  RtpHeader h;
  h.marker = true;
  h.payload_type = 97;
  h.sequence_number = 0xBEEF;
  h.timestamp = 0x01020304;
  h.ssrc = 0xA1B2C3D4;
  const auto bytes = h.serialize();
  const auto back = RtpHeader::try_parse(bytes);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->sequence_number, h.sequence_number);
  EXPECT_EQ(back->ssrc, h.ssrc);

  EXPECT_FALSE(RtpHeader::try_parse(std::vector<std::uint8_t>{}));
  EXPECT_FALSE(RtpHeader::try_parse(std::vector<std::uint8_t>(11, 0)));
  std::vector<std::uint8_t> bad(12, 0);
  EXPECT_FALSE(RtpHeader::try_parse(bad));  // version 0.
  bad[0] = (2 << 6) | 0x05;                 // CSRC count 5.
  EXPECT_FALSE(RtpHeader::try_parse(bad));
  bad[0] = (2 << 6) | 0x10;                 // extension bit.
  EXPECT_FALSE(RtpHeader::try_parse(bad));
}

// Property-style fuzz: random bytes must either parse into a header that
// reserializes to the same bytes, or be rejected — and try_parse must
// agree exactly with whether parse throws.  Never crash, never throw
// from try_parse.
TEST(Rtp, FuzzTryParseNeverThrowsAndAgreesWithParse) {
  util::Rng rng{0xF00DF00DULL};
  std::size_t accepted = 0;
  for (int iter = 0; iter < 5000; ++iter) {
    const std::size_t len = rng.uniform_int(40);  // 0..39 bytes.
    std::vector<std::uint8_t> bytes(len);
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.uniform_int(256));
    // Bias some iterations toward valid-looking headers so the accept
    // path is exercised too, not just the version check.
    if (iter % 3 == 0 && len >= 1) bytes[0] = 2 << 6;

    const auto maybe = RtpHeader::try_parse(bytes);
    bool threw = false;
    RtpHeader parsed;
    try {
      parsed = RtpHeader::parse(bytes);
    } catch (const std::invalid_argument&) {
      threw = true;
    }
    EXPECT_EQ(maybe.has_value(), !threw);
    if (maybe) {
      ++accepted;
      const auto reserialized = maybe->serialize();
      // The fixed fields must round-trip through serialize().
      EXPECT_TRUE(std::equal(reserialized.begin() + 1, reserialized.end(),
                             bytes.begin() + 1));
      EXPECT_EQ(parsed.sequence_number, maybe->sequence_number);
      EXPECT_EQ(parsed.timestamp, maybe->timestamp);
    }
  }
  EXPECT_GT(accepted, 100u);  // the accept path really ran.
}

// write_to is the allocation-free twin of serialize(): identical bytes
// into a caller-owned buffer, and try_parse inverts it for every
// representable header.
TEST(Rtp, WriteToMatchesSerializeAndRoundtrips) {
  const auto config = proptest::Config::from_env(0x27b1107, 60);
  proptest::check(
      "write_to/try_parse round-trip", config,
      [&](util::Rng& rng, std::uint64_t) {
        RtpHeader h;
        h.marker = rng.bernoulli(0.5);
        h.padding = rng.bernoulli(0.5);
        h.payload_type = static_cast<std::uint8_t>(rng.uniform_int(128));
        h.sequence_number =
            static_cast<std::uint16_t>(rng.uniform_int(65536));
        h.timestamp = static_cast<std::uint32_t>(rng());
        h.ssrc = static_cast<std::uint32_t>(rng());

        // Oversized buffer: only the first kSize bytes are written.
        std::array<std::uint8_t, RtpHeader::kSize + 4> buffer;
        buffer.fill(0xEE);
        ASSERT_TRUE(h.write_to(buffer));
        EXPECT_EQ(buffer[RtpHeader::kSize], 0xEE);  // tail untouched.

        const auto allocated = h.serialize();
        EXPECT_TRUE(std::equal(allocated.begin(), allocated.end(),
                               buffer.begin()));

        const auto back = RtpHeader::try_parse(
            std::span<const std::uint8_t>{buffer.data(), RtpHeader::kSize});
        ASSERT_TRUE(back.has_value());
        EXPECT_EQ(back->marker, h.marker);
        EXPECT_EQ(back->padding, h.padding);
        EXPECT_EQ(back->payload_type, h.payload_type);
        EXPECT_EQ(back->sequence_number, h.sequence_number);
        EXPECT_EQ(back->timestamp, h.timestamp);
        EXPECT_EQ(back->ssrc, h.ssrc);
      });
}

TEST(Rtp, WriteToRefusesShortBufferWithoutWriting) {
  RtpHeader h;
  h.sequence_number = 0x1234;
  std::array<std::uint8_t, RtpHeader::kSize - 1> buffer;
  buffer.fill(0xEE);
  EXPECT_FALSE(h.write_to(buffer));
  for (const std::uint8_t b : buffer) EXPECT_EQ(b, 0xEE);
}

TEST(Rtp, PaddingBitRoundTripsThroughWire) {
  RtpHeader h;
  h.padding = true;
  const auto bytes = h.serialize();
  EXPECT_EQ(bytes[0] & 0x20, 0x20);  // RFC 3550 P bit.
  const RtpHeader back = RtpHeader::parse(bytes);
  EXPECT_TRUE(back.padding);
  const auto maybe = RtpHeader::try_parse(bytes);
  ASSERT_TRUE(maybe.has_value());
  EXPECT_TRUE(maybe->padding);
}

// Property: for every (content, pad) within the RFC limits, writing the
// trailer and stripping it recovers exactly the content size and leaves
// the content bytes untouched.
TEST(Rtp, PadTrailerRoundTripProperty) {
  const auto config = proptest::Config::from_env(0x9AD71A, 80);
  proptest::check(
      "pad trailer round-trip", config, [&](util::Rng& rng, std::uint64_t) {
        const std::size_t content = rng.uniform_int(1400);
        const std::size_t pad = 1 + rng.uniform_int(kMaxRtpPadding);
        std::vector<std::uint8_t> payload(content + pad);
        for (std::size_t i = 0; i < content; ++i) {
          payload[i] = static_cast<std::uint8_t>(rng.uniform_int(256));
        }
        const std::vector<std::uint8_t> original(payload.begin(),
                                                 payload.begin() + content);
        ASSERT_TRUE(rtp_write_pad_trailer(payload, content));
        EXPECT_EQ(payload.back(), pad);

        RtpHeader h;
        h.padding = true;
        const auto stripped = rtp_unpadded_size(h, payload);
        ASSERT_TRUE(stripped.has_value());
        EXPECT_EQ(*stripped, content);
        EXPECT_TRUE(std::equal(original.begin(), original.end(),
                               payload.begin()));

        // With the P bit clear the trailer is just payload bytes.
        h.padding = false;
        const auto unpadded = rtp_unpadded_size(h, payload);
        ASSERT_TRUE(unpadded.has_value());
        EXPECT_EQ(*unpadded, payload.size());
      });
}

TEST(Rtp, PadTrailerRejectsInconsistentInput) {
  RtpHeader padded;
  padded.padding = true;
  // Hostile captures: empty payload, zero count, count beyond payload.
  EXPECT_FALSE(rtp_unpadded_size(padded, std::vector<std::uint8_t>{}));
  std::vector<std::uint8_t> zero_count{0x01, 0x02, 0x00};
  EXPECT_FALSE(rtp_unpadded_size(padded, zero_count));
  std::vector<std::uint8_t> overrun{0x01, 0x02, 0x09};
  EXPECT_FALSE(rtp_unpadded_size(padded, overrun));

  // Write side: no room for a trailer, or pad beyond the one-byte count.
  std::vector<std::uint8_t> payload(10, 0x11);
  EXPECT_FALSE(rtp_write_pad_trailer(payload, payload.size()));
  EXPECT_FALSE(rtp_write_pad_trailer(payload, payload.size() + 4));
  std::vector<std::uint8_t> huge(300, 0x11);
  EXPECT_FALSE(rtp_write_pad_trailer(huge, 0));  // pad 300 > 255.
  for (const auto b : payload) EXPECT_EQ(b, 0x11);  // nothing written.
}

TEST(Rtp, MaxPayloadAccountsForAllHeaders) {
  EXPECT_EQ(max_payload(1500), 1500u - 28u - 12u);
  EXPECT_EQ(max_payload(576), 576u - 40u);
}

}  // namespace
}  // namespace tv::net
