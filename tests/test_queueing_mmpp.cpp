#include "queueing/mmpp.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace tv::queueing {
namespace {

TEST(Mmpp2, GeneratorAndRatesMatchEquationOne) {
  const Mmpp2 m{.r12 = 3.0, .r21 = 1.5, .lambda1 = 100.0, .lambda2 = 10.0};
  const auto r = m.generator();
  EXPECT_DOUBLE_EQ(r(0, 0), -3.0);
  EXPECT_DOUBLE_EQ(r(0, 1), 3.0);
  EXPECT_DOUBLE_EQ(r(1, 0), 1.5);
  EXPECT_DOUBLE_EQ(r(1, 1), -1.5);
  const auto lam = m.rate_matrix();
  EXPECT_DOUBLE_EQ(lam(0, 0), 100.0);
  EXPECT_DOUBLE_EQ(lam(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(lam(1, 1), 10.0);
}

TEST(Mmpp2, StationaryMatchesEquationTwo) {
  const Mmpp2 m{.r12 = 3.0, .r21 = 1.0, .lambda1 = 1.0, .lambda2 = 1.0};
  const auto pi = m.stationary();
  // pi = (p2, p1) / (p1 + p2).
  EXPECT_NEAR(pi[0], 0.25, 1e-12);
  EXPECT_NEAR(pi[1], 0.75, 1e-12);
  EXPECT_NEAR(pi[0] + pi[1], 1.0, 1e-12);
}

TEST(Mmpp2, MeanRateIsStationaryWeighted) {
  const Mmpp2 m{.r12 = 2.0, .r21 = 2.0, .lambda1 = 30.0, .lambda2 = 10.0};
  EXPECT_NEAR(m.mean_rate(), 20.0, 1e-12);
}

TEST(Mmpp2, ValidationRejectsNonsense) {
  EXPECT_THROW((Mmpp2{.r12 = 0.0, .r21 = 1.0}.validate()),
               std::invalid_argument);
  EXPECT_THROW(
      (Mmpp2{.r12 = 1.0, .r21 = 1.0, .lambda1 = 0.0, .lambda2 = 0.0}
           .validate()),
      std::invalid_argument);
}

TEST(SimulateMmpp, ArrivalCountMatchesMeanRate) {
  const Mmpp2 m{.r12 = 5.0, .r21 = 2.0, .lambda1 = 400.0, .lambda2 = 50.0};
  util::Rng rng{99};
  const double horizon = 400.0;
  const auto arrivals = simulate_mmpp(m, horizon, rng);
  const double rate = static_cast<double>(arrivals.size()) / horizon;
  EXPECT_NEAR(rate, m.mean_rate(), 0.05 * m.mean_rate());
  for (std::size_t i = 1; i < arrivals.size(); ++i) {
    EXPECT_GE(arrivals[i].time, arrivals[i - 1].time);
  }
}

TEST(SimulateMmpp, StateLabelsHaveHigherRateInStateOne) {
  const Mmpp2 m{.r12 = 1.0, .r21 = 1.0, .lambda1 = 500.0, .lambda2 = 5.0};
  util::Rng rng{7};
  const auto arrivals = simulate_mmpp(m, 200.0, rng);
  std::size_t s1 = 0;
  for (const auto& a : arrivals) s1 += a.state == 1 ? 1 : 0;
  // States are symmetric in occupancy, so ~99% of arrivals come from 1.
  EXPECT_GT(static_cast<double>(s1) / arrivals.size(), 0.9);
}

TEST(EstimateMmpp, RecoversBurstTraceParameters) {
  // A deterministic I-burst/P-gap trace like the video producer generates:
  // every second, 20 packets spaced 0.2 ms, then 30 packets spaced 30 ms.
  std::vector<LabelledArrival> trace;
  double t = 0.0;
  for (int gop = 0; gop < 50; ++gop) {
    t = gop * 1.0;
    for (int k = 0; k < 20; ++k) {
      trace.push_back({t, true});
      t += 0.2e-3;
    }
    for (int k = 0; k < 29; ++k) {
      trace.push_back({t, false});
      t += 30e-3;
    }
  }
  const Mmpp2 est = estimate_mmpp(trace);
  // State 1: 20 packets in ~4 ms -> lambda1 ~ 5000/s, r12 ~ 1/4ms.
  EXPECT_NEAR(est.lambda1, 5000.0, 500.0);
  EXPECT_NEAR(est.r12, 250.0, 30.0);
  // State 2: 29 packets in ~0.996 s -> lambda2 ~ 29/s, r21 ~ 1/s.
  EXPECT_NEAR(est.lambda2, 29.0, 3.0);
  EXPECT_NEAR(est.r21, 1.0, 0.15);
}

TEST(EstimateMmpp, RoundtripsASimulatedMmpp) {
  const Mmpp2 truth{.r12 = 40.0, .r21 = 4.0, .lambda1 = 2000.0,
                    .lambda2 = 50.0};
  util::Rng rng{11};
  const auto arrivals = simulate_mmpp(truth, 2000.0, rng);
  std::vector<LabelledArrival> trace;
  trace.reserve(arrivals.size());
  for (const auto& a : arrivals) trace.push_back({a.time, a.state == 1});
  const Mmpp2 est = estimate_mmpp(trace);
  EXPECT_NEAR(est.lambda1, truth.lambda1, 0.25 * truth.lambda1);
  EXPECT_NEAR(est.lambda2, truth.lambda2, 0.25 * truth.lambda2);
  EXPECT_NEAR(est.mean_rate(), truth.mean_rate(), 0.15 * truth.mean_rate());
}

TEST(EstimateMmpp, RejectsDegenerateTraces) {
  EXPECT_THROW((void)estimate_mmpp({}), std::invalid_argument);
  std::vector<LabelledArrival> only_p = {
      {0.0, false}, {0.1, false}, {0.2, false}, {0.3, false}};
  EXPECT_THROW((void)estimate_mmpp(only_p), std::invalid_argument);
}

}  // namespace
}  // namespace tv::queueing
