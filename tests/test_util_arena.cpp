#include "util/arena.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

#include "util/bytes.hpp"

namespace tv::util {
namespace {

TEST(Arena, AllocationsAreDisjointAndWritable) {
  Arena arena;
  std::uint8_t* a = arena.allocate(100);
  std::uint8_t* b = arena.allocate(100);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_TRUE(b >= a + 100 || a >= b + 100);
  std::memset(a, 0xAA, 100);
  std::memset(b, 0xBB, 100);
  EXPECT_EQ(a[99], 0xAA);
  EXPECT_EQ(b[0], 0xBB);
}

TEST(Arena, RespectsAlignment) {
  Arena arena;
  (void)arena.allocate(1, 1);  // knock the cursor off alignment.
  for (const std::size_t align : {1u, 2u, 4u, 8u, 16u, 64u}) {
    std::uint8_t* p = arena.allocate(3, align);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % align, 0u)
        << "align " << align;
    (void)arena.allocate(1, 1);
  }
}

TEST(Arena, ZeroSizedAllocationsAreDistinct) {
  Arena arena;
  std::uint8_t* a = arena.allocate(0, 1);
  std::uint8_t* b = arena.allocate(0, 1);
  ASSERT_NE(a, nullptr);
  EXPECT_NE(a, b);
}

TEST(Arena, GrowsBeyondOneChunkWithStableAddresses) {
  Arena arena{1024};
  std::vector<std::uint8_t*> blocks;
  for (int i = 0; i < 64; ++i) {
    std::uint8_t* p = arena.allocate(100, 1);
    std::memset(p, i, 100);
    blocks.push_back(p);
  }
  EXPECT_GT(arena.chunk_count(), 1u);
  // Earlier blocks keep their bytes as the arena grows (no realloc-move).
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(blocks[static_cast<std::size_t>(i)][0], i);
    EXPECT_EQ(blocks[static_cast<std::size_t>(i)][99], i);
  }
}

TEST(Arena, OversizedAllocationGetsDedicatedChunk) {
  Arena arena{256};
  std::uint8_t* p = arena.allocate(10000, 8);
  ASSERT_NE(p, nullptr);
  std::memset(p, 0xCD, 10000);
  EXPECT_GE(arena.bytes_reserved(), 10000u);
}

TEST(Arena, ResetRetainsCapacityAndReusesMemory) {
  Arena arena{1024};
  for (int i = 0; i < 32; ++i) (void)arena.allocate(200, 1);
  const std::size_t reserved = arena.bytes_reserved();
  const std::uint64_t chunks = arena.chunk_count();
  EXPECT_GT(arena.bytes_in_use(), 0u);

  arena.reset();
  EXPECT_EQ(arena.bytes_in_use(), 0u);
  EXPECT_EQ(arena.bytes_reserved(), reserved);
  EXPECT_EQ(arena.reset_count(), 1u);

  // Steady state: the same workload fits in the retained chunks.
  for (int i = 0; i < 32; ++i) (void)arena.allocate(200, 1);
  EXPECT_EQ(arena.bytes_reserved(), reserved);
  EXPECT_EQ(arena.chunk_count(), chunks);
}

TEST(Arena, HighWaterTracksPeakAcrossResets) {
  Arena arena{1024};
  (void)arena.allocate(3000, 1);
  (void)arena.allocate(2000, 1);
  EXPECT_EQ(arena.high_water_bytes(), 5000u);
  arena.reset();
  (void)arena.allocate(100, 1);
  // Peak is lifetime, not per-run.
  EXPECT_EQ(arena.high_water_bytes(), 5000u);
  EXPECT_EQ(arena.bytes_in_use(), 100u);
}

TEST(Arena, CountsAllocations) {
  Arena arena;
  EXPECT_EQ(arena.allocation_count(), 0u);
  for (int i = 0; i < 10; ++i) (void)arena.allocate(8);
  EXPECT_EQ(arena.allocation_count(), 10u);
  arena.reset();
  (void)arena.allocate(8);
  EXPECT_EQ(arena.allocation_count(), 11u);
}

TEST(Arena, ReleaseDropsEverything) {
  Arena arena{1024};
  (void)arena.allocate(5000, 1);
  arena.release();
  EXPECT_EQ(arena.bytes_reserved(), 0u);
  EXPECT_EQ(arena.bytes_in_use(), 0u);
  EXPECT_EQ(arena.chunk_count(), 0u);
  // Still usable afterwards.
  std::uint8_t* p = arena.allocate(64);
  ASSERT_NE(p, nullptr);
  std::memset(p, 1, 64);
}

TEST(Arena, MoveTransfersOwnership) {
  Arena a{1024};
  std::uint8_t* p = a.allocate(128, 1);
  std::memset(p, 0x5A, 128);
  Arena b = std::move(a);
  EXPECT_EQ(p[127], 0x5A);  // bytes survive the move (stable chunks).
  EXPECT_EQ(b.bytes_in_use(), 128u);
}

TEST(ByteView, DeepEqualityAndSubviews) {
  std::vector<std::uint8_t> storage{1, 2, 3, 4, 5};
  ByteView v{storage.data(), storage.size()};
  EXPECT_EQ(v.size(), 5u);
  EXPECT_EQ(v, storage);
  EXPECT_EQ(v.front(), 1);
  EXPECT_EQ(v.back(), 5);

  std::vector<std::uint8_t> same{1, 2, 3, 4, 5};
  ByteView w{same.data(), same.size()};
  EXPECT_EQ(v, w);  // different addresses, same bytes.

  ByteView tail = v.subview(2);
  EXPECT_EQ(tail.size(), 3u);
  EXPECT_EQ(tail[0], 3);
  ByteView mid = v.subview(1, 2);
  EXPECT_EQ(mid.to_vector(), (std::vector<std::uint8_t>{2, 3}));

  w[0] = 9;
  EXPECT_FALSE(v == w);
}

}  // namespace
}  // namespace tv::util
