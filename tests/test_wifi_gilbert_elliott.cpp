#include "wifi/gilbert_elliott.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace tv::wifi {
namespace {

// Empirical loss rate and burst statistics from a long trace.
struct TraceStats {
  double loss_rate = 0.0;
  double mean_burst = 0.0;  ///< mean run length of consecutive losses.
  std::size_t bursts = 0;
};

TraceStats measure(const std::vector<bool>& trace) {
  TraceStats s;
  std::size_t losses = 0;
  std::size_t run = 0;
  std::size_t run_total = 0;
  for (bool lost : trace) {
    if (lost) {
      ++losses;
      ++run;
    } else if (run > 0) {
      ++s.bursts;
      run_total += run;
      run = 0;
    }
  }
  if (run > 0) {
    ++s.bursts;
    run_total += run;
  }
  s.loss_rate = static_cast<double>(losses) / static_cast<double>(trace.size());
  s.mean_burst = s.bursts > 0
                     ? static_cast<double>(run_total) /
                           static_cast<double>(s.bursts)
                     : 0.0;
  return s;
}

TEST(GilbertElliott, StationaryLossRateMatchesConfiguration) {
  GilbertElliottParams params;
  params.mean_loss_prob = 0.30;
  params.mean_burst_length = 4.0;
  GilbertElliottChannel channel{params, 42};
  const auto stats = measure(channel.trace(400000));
  EXPECT_NEAR(stats.loss_rate, 0.30, 0.01);
}

TEST(GilbertElliott, MeanBurstLengthMatchesConfiguration) {
  GilbertElliottParams params;
  params.mean_loss_prob = 0.10;
  params.mean_burst_length = 5.0;
  GilbertElliottChannel channel{params, 7};
  const auto stats = measure(channel.trace(400000));
  // With h_b = 1 and h_g = 0 a loss burst is exactly a Bad sojourn.
  EXPECT_NEAR(stats.mean_burst, 5.0, 0.25);
  EXPECT_NEAR(stats.loss_rate, 0.10, 0.01);
}

TEST(GilbertElliott, IdenticalSeedsReproduceIdenticalTraces) {
  GilbertElliottParams params;
  params.mean_loss_prob = 0.25;
  params.mean_burst_length = 3.0;
  GilbertElliottChannel a{params, 1234};
  GilbertElliottChannel b{params, 1234};
  EXPECT_EQ(a.trace(20000), b.trace(20000));
  GilbertElliottChannel c{params, 1235};
  EXPECT_NE(a.trace(20000), c.trace(20000));
}

TEST(GilbertElliott, BurstLengthOneDegeneratesToBernoulli) {
  GilbertElliottParams params;
  params.mean_loss_prob = 0.20;
  params.mean_burst_length = 1.0;
  ASSERT_TRUE(params.effectively_iid());
  GilbertElliottChannel channel{params, 99};
  const auto stats = measure(channel.trace(400000));
  EXPECT_NEAR(stats.loss_rate, 0.20, 0.01);
  // i.i.d. losses at rate p have mean run length 1 / (1 - p).
  EXPECT_NEAR(stats.mean_burst, 1.0 / 0.8, 0.05);
}

TEST(GilbertElliott, BurstierChannelHasLongerRunsAtSameLossRate) {
  GilbertElliottParams iid;
  iid.mean_loss_prob = 0.15;
  iid.mean_burst_length = 1.0;
  GilbertElliottParams bursty = iid;
  bursty.mean_burst_length = 8.0;
  GilbertElliottChannel a{iid, 5};
  GilbertElliottChannel b{bursty, 5};
  const auto sa = measure(a.trace(300000));
  const auto sb = measure(b.trace(300000));
  EXPECT_NEAR(sa.loss_rate, sb.loss_rate, 0.02);
  EXPECT_GT(sb.mean_burst, 3.0 * sa.mean_burst);
}

TEST(GilbertElliott, DerivedTransitionProbabilitiesBalance) {
  GilbertElliottParams params;
  params.mean_loss_prob = 0.30;
  params.mean_burst_length = 4.0;
  params.validate();
  const double pi_bad = params.stationary_bad_prob();
  // Detailed balance of the two-state chain.
  EXPECT_NEAR((1.0 - pi_bad) * params.good_to_bad_prob(),
              pi_bad * params.bad_to_good_prob(), 1e-12);
  EXPECT_NEAR(pi_bad, 0.30, 1e-12);  // h_b = 1, h_g = 0.
}

TEST(GilbertElliott, ValidatesUnreachableConfigurations) {
  GilbertElliottParams params;
  params.mean_loss_prob = 1.5;
  EXPECT_THROW(params.validate(), std::invalid_argument);
  params.mean_loss_prob = 0.3;
  params.mean_burst_length = -1.0;
  EXPECT_THROW(params.validate(), std::invalid_argument);
  // Loss rate outside [h_g, h_b].
  params.mean_burst_length = 4.0;
  params.good_loss_prob = 0.5;
  params.bad_loss_prob = 0.4;
  EXPECT_THROW(params.validate(), std::invalid_argument);
  // Burst too short for the loss rate: Good -> Bad probability > 1.
  params.good_loss_prob = 0.0;
  params.bad_loss_prob = 1.0;
  params.mean_loss_prob = 0.9;
  params.mean_burst_length = 1.5;
  EXPECT_THROW(params.validate(), std::invalid_argument);
}

TEST(OutageWindow, ContainmentAndLookup) {
  const std::vector<OutageWindow> outages = {{1.0, 0.5}, {3.0, 1.0}};
  EXPECT_FALSE(in_outage(outages, 0.9));
  EXPECT_TRUE(in_outage(outages, 1.0));
  EXPECT_TRUE(in_outage(outages, 1.49));
  EXPECT_FALSE(in_outage(outages, 1.5));  // half-open interval.
  EXPECT_TRUE(in_outage(outages, 3.7));
  EXPECT_FALSE(in_outage(outages, 4.2));
  EXPECT_FALSE(in_outage({}, 1.0));
}

}  // namespace
}  // namespace tv::wifi
