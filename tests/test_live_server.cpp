// Admission control, overload shedding and the run_load harness:
// fleet-level properties of the multi-session server — token budgets,
// the overload latch, outcome classification, determinism, and the
// quality bound under contention.
#include "live/server.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "live/load.hpp"

namespace tv::live {
namespace {

LoadConfig small_fleet(int sessions) {
  LoadConfig config;
  config.sessions = sessions;
  config.frames = 8;
  config.gop_size = 4;
  config.seed = 11;
  return config;
}

TEST(Server, RejectsConfigNonsense) {
  EventLoop loop{ClockMode::kVirtual};
  ServerConfig config;
  config.max_sessions = 0;
  EXPECT_THROW((void)Server(loop, config), std::invalid_argument);
  config = {};
  config.overload_low = 10;
  config.overload_high = 5;
  EXPECT_THROW((void)Server(loop, config), std::invalid_argument);
}

TEST(RunLoad, CleanFleetAllComplete) {
  LoadConfig config = small_fleet(6);
  const LoadReport report = run_load(config);

  EXPECT_EQ(report.completed, 6u);
  EXPECT_EQ(report.recovered + report.shed + report.watchdog_killed, 0u);
  EXPECT_EQ(report.server.admitted, 6u);
  EXPECT_EQ(report.server.rejected, 0u);
  EXPECT_EQ(report.server.closed, 6u);
  ASSERT_EQ(report.sessions.size(), 6u);
  for (const auto& s : report.sessions) {
    EXPECT_EQ(s.client.outcome, SessionOutcome::kCompleted);
    EXPECT_DOUBLE_EQ(s.delivered_fraction, 1.0);
    EXPECT_EQ(s.delivered, report.packet_count);
  }
}

TEST(RunLoad, AdmissionRejectsBeyondTheTokenBudget) {
  // Everyone HELLOs at t=0 against a budget of 2: exactly two stream,
  // the rest are shed by admission control and classify as such.
  LoadConfig config = small_fleet(5);
  config.max_sessions = 2;
  config.ramp_s = 0.0;
  const LoadReport report = run_load(config);

  EXPECT_EQ(report.completed, 2u);
  EXPECT_EQ(report.shed, 3u);
  EXPECT_EQ(report.watchdog_killed, 0u);
  EXPECT_EQ(report.server.admitted, 2u);
  EXPECT_EQ(report.server.rejected, 3u);
  // Session start order decides who wins the tokens.
  EXPECT_EQ(report.sessions[0].client.outcome, SessionOutcome::kCompleted);
  EXPECT_EQ(report.sessions[1].client.outcome, SessionOutcome::kCompleted);
  for (std::size_t i = 2; i < 5; ++i) {
    EXPECT_EQ(report.sessions[i].client.outcome, SessionOutcome::kShed);
    EXPECT_EQ(report.sessions[i].delivered, 0u);
  }
}

TEST(RunLoad, TokensComeBackWhenSessionsClose) {
  // Budget of 1, but the ramp spaces the three sessions far apart: each
  // finds the token free because the previous session closed and
  // released it.  No rejections, three completions.
  LoadConfig config = small_fleet(3);
  config.max_sessions = 1;
  config.ramp_s = 60.0;  // starts at 0 s, 20 s, 40 s; sessions last ~1 s.
  const LoadReport report = run_load(config);

  EXPECT_EQ(report.completed, 3u);
  EXPECT_EQ(report.shed, 0u);
  EXPECT_EQ(report.server.admitted, 3u);
  EXPECT_EQ(report.server.rejected, 0u);
}

TEST(RunLoad, EverySessionLandsInExactlyOneOutcomeBucket) {
  LoadConfig config = small_fleet(24);
  config.max_sessions = 16;
  config.ramp_s = 0.5;
  config.chaos.eagain_prob = 0.2;
  config.chaos.kill_prob = 0.25;
  config.chaos.ctrl_drop_prob = 0.2;
  config.server_idle_timeout_s = 1.0;
  const LoadReport report = run_load(config);

  EXPECT_EQ(report.completed + report.recovered + report.shed +
                report.watchdog_killed,
            24u);
  for (const auto& s : report.sessions) {
    EXPECT_NE(s.client.outcome, SessionOutcome::kPending)
        << "session " << s.index << " was never classified";
  }
  // The chaos knobs actually bit: something was killed or retried.
  EXPECT_GE(report.watchdog_killed + report.recovered, 1u);
}

TEST(RunLoad, SameSeedSameFleetOutcomeByteForByte) {
  LoadConfig config = small_fleet(16);
  config.max_sessions = 12;
  config.ramp_s = 0.5;
  config.chaos.eagain_prob = 0.3;
  config.chaos.short_send_prob = 0.05;
  config.chaos.kill_prob = 0.2;
  config.chaos.ctrl_drop_prob = 0.3;
  config.server_idle_timeout_s = 1.0;

  const LoadReport a = run_load(config);
  const LoadReport b = run_load(config);

  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.recovered, b.recovered);
  EXPECT_EQ(a.shed, b.shed);
  EXPECT_EQ(a.watchdog_killed, b.watchdog_killed);
  EXPECT_EQ(a.total_send_retries, b.total_send_retries);
  EXPECT_EQ(a.total_packets_shed, b.total_packets_shed);
  EXPECT_DOUBLE_EQ(a.duration_s, b.duration_s);
  ASSERT_EQ(a.sessions.size(), b.sessions.size());
  for (std::size_t i = 0; i < a.sessions.size(); ++i) {
    EXPECT_EQ(a.sessions[i].client.outcome, b.sessions[i].client.outcome)
        << "session " << i;
    EXPECT_EQ(a.sessions[i].delivered, b.sessions[i].delivered);
    EXPECT_EQ(a.sessions[i].client.send_retries,
              b.sessions[i].client.send_retries);
    EXPECT_EQ(a.sessions[i].chaos.eagain_injected,
              b.sessions[i].chaos.eagain_injected);
  }

  // And the seed is load-bearing: a different one changes the fleet.
  LoadConfig other = config;
  other.seed = config.seed + 1;
  const LoadReport c = run_load(other);
  EXPECT_NE(a.total_send_retries, c.total_send_retries);
}

TEST(RunLoad, RollingWatchdogsNeverLivelockOnExactDeadlines) {
  // Regression: the virtual clock jumps to exactly
  // `last_heard + idle_timeout`, and floating-point `(a + b) - a` can
  // round below `b`.  The idle watchdog used to re-arm at that
  // already-past deadline and spin the loop forever at a frozen virtual
  // time.  This seed/fleet combination hit the rounding edge; the run
  // terminating at all (ctest's timeout is the watchdog) plus every
  // session classifying is the assertion.
  LoadConfig config;
  config.sessions = 6;
  config.seed = 1;
  config.policy =
      policy::policy_from_string("I", crypto::Algorithm::kAes128);
  config.pipeline.algorithm = crypto::Algorithm::kAes128;
  config.chaos.kill_prob = 0.3;
  config.server_idle_timeout_s = 2.0;
  const LoadReport report = run_load(config);

  EXPECT_EQ(report.completed + report.recovered + report.shed +
                report.watchdog_killed,
            6u);
  EXPECT_GE(report.watchdog_killed, 1u);  // the kill coin actually landed.
  EXPECT_EQ(report.server.watchdog_killed,
            report.watchdog_killed);  // server reaped every silent client.
  EXPECT_LT(report.duration_s, 60.0);  // loop idled, virtual time bounded.
}

TEST(RunLoad, ReceiverStallDefersProcessingAndTripsTheOverloadLatch) {
  // The server's receive path wedges for two virtual seconds while the
  // fleet keeps uploading.  Backlog must cross the (tiny) high
  // watermark, latch overload, reject the HELLOs that arrive during the
  // stall, and drain back below the low watermark afterwards.
  LoadConfig config = small_fleet(8);
  config.ramp_s = 1.8;
  config.chaos.stalls = {{0.2, 2.0}};
  config.overload_high = 40;
  config.overload_low = 4;
  config.server_idle_timeout_s = 6.0;
  config.supervisor.stall_timeout_s = 8.0;
  const LoadReport report = run_load(config);

  EXPECT_GE(report.server.stall_deferred, 1u);
  EXPECT_GE(report.server.max_backlog, 40u);
  EXPECT_GE(report.server.overload_entries, 1u);
  // rejected counts REJECT messages — a client whose HELLOs piled up
  // during the stall is rejected once per retransmission — so it bounds
  // the shed *session* count from above.
  EXPECT_GE(report.shed, 1u);
  EXPECT_GE(report.server.rejected, report.shed);
  // Whoever was admitted still finished cleanly once the stall lifted.
  EXPECT_EQ(report.completed + report.recovered, 8u - report.shed);
}

TEST(RunLoad, ContentionCostsAtMostHalfADecibel) {
  // The acceptance experiment: an uncontended fleet vs the same fleet
  // squeezed through half the admission slots.  Admitted sessions keep
  // bounded queues and land within 0.5 dB of the uncontended PSNR.
  LoadConfig uncontended = small_fleet(3);
  uncontended.evaluate_psnr = true;
  const LoadReport base = run_load(uncontended);
  ASSERT_EQ(base.completed, 3u);
  double base_psnr = 0.0;
  for (const auto& s : base.sessions) base_psnr += s.psnr_db;
  base_psnr /= 3.0;
  ASSERT_GT(base_psnr, 20.0);  // sanity: decodable video.

  LoadConfig contended = small_fleet(6);
  contended.max_sessions = 3;
  contended.ramp_s = 0.0;
  contended.evaluate_psnr = true;
  const LoadReport report = run_load(contended);
  EXPECT_EQ(report.shed, 3u);

  for (const auto& s : report.sessions) {
    if (s.client.outcome == SessionOutcome::kShed) continue;
    EXPECT_LE(s.client.max_queue_depth,
              contended.supervisor.queue_cap);  // bounded, not growing.
    EXPECT_NEAR(s.psnr_db, base_psnr, 0.5);
  }
}

}  // namespace
}  // namespace tv::live
