#include "video/dct.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/rng.hpp"

namespace tv::video {
namespace {

Block8x8 random_block(std::uint64_t seed) {
  util::Rng rng{seed};
  Block8x8 b{};
  for (auto& v : b) v = rng.uniform(0.0, 255.0);
  return b;
}

class DctRoundtrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DctRoundtrip, InverseRecoversSpatialBlock) {
  const Block8x8 spatial = random_block(GetParam());
  const Block8x8 back = inverse_dct(forward_dct(spatial));
  for (int i = 0; i < 64; ++i) {
    EXPECT_NEAR(back[i], spatial[i], 1e-9);
  }
}

TEST_P(DctRoundtrip, ParsevalEnergyPreservation) {
  const Block8x8 spatial = random_block(GetParam() + 100);
  const Block8x8 coeffs = forward_dct(spatial);
  double es = 0.0;
  double ec = 0.0;
  for (int i = 0; i < 64; ++i) {
    es += spatial[i] * spatial[i];
    ec += coeffs[i] * coeffs[i];
  }
  EXPECT_NEAR(es, ec, es * 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DctRoundtrip,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

TEST(Dct, FlatBlockHasOnlyDc) {
  Block8x8 flat{};
  flat.fill(100.0);
  const Block8x8 coeffs = forward_dct(flat);
  EXPECT_NEAR(coeffs[0], 800.0, 1e-9);  // orthonormal DC = 8 * value.
  for (int i = 1; i < 64; ++i) {
    EXPECT_NEAR(coeffs[i], 0.0, 1e-9);
  }
}

TEST(Quantize, ErrorBoundedByHalfStep) {
  const Block8x8 spatial = random_block(42);
  const Block8x8 coeffs = forward_dct(spatial);
  const double qstep = 10.0;
  const Block8x8 recon = dequantize(quantize(coeffs, qstep), qstep);
  for (int i = 0; i < 64; ++i) {
    const double step = i == 0 ? qstep * 0.5 : qstep;
    EXPECT_LE(std::abs(recon[i] - coeffs[i]), step * 0.5 + 1e-9);
  }
}

TEST(Quantize, ZeroStaysZero) {
  Block8x8 zero{};
  const QuantBlock q = quantize(zero, 8.0);
  for (auto v : q) EXPECT_EQ(v, 0);
}

TEST(QuantizeDeadzone, SmallCoefficientsVanish) {
  Block8x8 coeffs{};
  coeffs[5] = 9.9;
  coeffs[9] = -9.9;
  coeffs[11] = 10.1;
  const QuantBlock q = quantize_deadzone(coeffs, 10.0);
  EXPECT_EQ(q[5], 0);   // |c| < qstep -> dead zone.
  EXPECT_EQ(q[9], 0);
  EXPECT_EQ(q[11], 1);  // just above.
}

TEST(QuantizeDeadzone, ReconstructionErrorBounded) {
  const Block8x8 spatial = random_block(77);
  const Block8x8 coeffs = forward_dct(spatial);
  const double qstep = 12.0;
  const Block8x8 recon =
      dequantize_deadzone(quantize_deadzone(coeffs, qstep), qstep);
  for (int i = 0; i < 64; ++i) {
    // Dead zone: uncoded error < qstep; coded error <= qstep/2.
    EXPECT_LE(std::abs(recon[i] - coeffs[i]), qstep + 1e-9);
  }
}

TEST(QuantizeDeadzone, NegativeSymmetry) {
  Block8x8 coeffs{};
  coeffs[3] = 25.0;
  Block8x8 neg{};
  neg[3] = -25.0;
  const double qstep = 10.0;
  const Block8x8 a = dequantize_deadzone(quantize_deadzone(coeffs, qstep), qstep);
  const Block8x8 b = dequantize_deadzone(quantize_deadzone(neg, qstep), qstep);
  EXPECT_NEAR(a[3], -b[3], 1e-12);
}

TEST(Zigzag, IsAPermutationStartingAtDc) {
  std::set<int> seen(kZigzag.begin(), kZigzag.end());
  EXPECT_EQ(seen.size(), 64u);
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), 63);
  EXPECT_EQ(kZigzag[0], 0);
  EXPECT_EQ(kZigzag[1], 1);   // right.
  EXPECT_EQ(kZigzag[2], 8);   // down-left.
  EXPECT_EQ(kZigzag[63], 63);
}

}  // namespace
}  // namespace tv::video
