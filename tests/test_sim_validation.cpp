#include "sim/validation.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace tv::sim {
namespace {

// A grid small enough for the unit tier but still exercising both the
// degenerate (I-frames encrypted) and live eavesdropper paths.
ValidationSpec tiny_spec() {
  ValidationSpec spec;
  spec.lambda1s = {2400.0};
  spec.lambda2s = {160.0};
  spec.events = 60000;
  spec.warmup = 6000;
  spec.batches = 30;
  spec.eavesdropper_repetitions = 200;
  spec.seed = 3;
  return spec;
}

TEST(ValidationSpec, EnumeratesCellsRowMajorWithDerivedSeeds) {
  ValidationSpec spec;
  spec.lambda1s = {2400.0, 4000.0};
  spec.lambda2s = {160.0};
  spec.algorithms = {crypto::Algorithm::kAes128, crypto::Algorithm::kAes256};
  ASSERT_EQ(spec.cell_count(), 8u);  // 2 lambda1 x 1 lambda2 x 2 pol x 2 alg.
  const auto cells = enumerate_cells(spec);
  ASSERT_EQ(cells.size(), 8u);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    EXPECT_EQ(cells[i].index, i);
    EXPECT_EQ(cells[i].seed, util::derive_seed(spec.seed, i));
  }
  // lambda1 is the slowest axis, algorithm the fastest.
  EXPECT_EQ(cells[0].lambda1, 2400.0);
  EXPECT_EQ(cells[4].lambda1, 4000.0);
  EXPECT_EQ(cells[0].policy.algorithm, crypto::Algorithm::kAes128);
  EXPECT_EQ(cells[1].policy.algorithm, crypto::Algorithm::kAes256);
  EXPECT_EQ(cells[0].policy.mode, policy::Mode::kNone);
  EXPECT_EQ(cells[2].policy.mode, policy::Mode::kIFrames);
}

TEST(ValidationSpec, RejectsDegenerateSpecs) {
  ValidationSpec empty = tiny_spec();
  empty.lambda1s.clear();
  EXPECT_THROW(empty.validate(), std::invalid_argument);

  ValidationSpec bad_z = tiny_spec();
  bad_z.z = 0.0;
  EXPECT_THROW(bad_z.validate(), std::invalid_argument);

  ValidationSpec lone_flow = tiny_spec();
  lone_flow.eavesdropper_repetitions = 1;
  EXPECT_THROW(lone_flow.validate(), std::invalid_argument);
}

TEST(ValidationRunner, TinyGridConvergesToAnalyticPredictions) {
  const ValidationSpec spec = tiny_spec();
  ValidationCollectSink sink;
  const ValidationSummary summary = ValidationRunner{}.run(spec, sink);
  EXPECT_EQ(summary.cells, spec.cell_count());
  EXPECT_EQ(summary.threads, 1u);
  EXPECT_TRUE(summary.all_passed()) << summary.failed_checks
                                    << " checks failed";
  ASSERT_EQ(sink.results.size(), spec.cell_count());
  for (const ValidationCellResult& result : sink.results) {
    EXPECT_TRUE(result.passed());
    EXPECT_FALSE(result.checks.empty());
    for (const ValidationCheck& check : result.checks) {
      EXPECT_TRUE(check.ok)
          << check.name << ": simulated " << check.simulated << " vs analytic "
          << check.analytic << " (tolerance " << check.tolerance << ")";
    }
  }
}

TEST(ValidationRunner, JsonlOutputIsByteIdenticalAcrossThreadCounts) {
  const ValidationSpec spec = tiny_spec();

  std::ostringstream serial;
  {
    ValidationJsonlSink sink{serial};
    (void)ValidationRunner{}.run(spec, sink);
  }

  std::ostringstream pooled;
  {
    util::ThreadPool pool{3};
    ValidationJsonlSink sink{pooled};
    const ValidationSummary summary = ValidationRunner{&pool}.run(spec, sink);
    EXPECT_EQ(summary.threads, 3u);
  }
  EXPECT_EQ(serial.str(), pooled.str());
  EXPECT_NE(serial.str().find("\"mean_wait\""), std::string::npos);
}

TEST(ValidationRunner, FailsFastOnUnstableCells) {
  ValidationSpec unstable = tiny_spec();
  // Policy "all" with 3DES on the slow device profile overloads the queue.
  unstable.lambda1s = {4000.0};
  unstable.lambda2s = {2000.0};
  unstable.policies = {{policy::Mode::kAll, crypto::Algorithm::kTripleDes,
                        0.0}};
  unstable.algorithms = {crypto::Algorithm::kTripleDes};
  ValidationCollectSink sink;
  EXPECT_THROW((void)ValidationRunner{}.run(unstable, sink),
               std::domain_error);
  EXPECT_TRUE(sink.results.empty());  // fail-fast: no cell ever ran.
}

}  // namespace
}  // namespace tv::sim
