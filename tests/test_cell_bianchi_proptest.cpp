// Property-based invariants of the heterogeneous n-station Bianchi solver
// over randomized (n, CWmin, retry-limit) populations, via
// tests/proptest.hpp.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "proptest.hpp"
#include "wifi/dcf_model.hpp"

namespace tv::wifi {
namespace {

DcfClass random_class(util::Rng& rng) {
  DcfClass c;
  c.stations = 1 + static_cast<int>(rng.uniform_int(40));
  c.cw_min = 2 + static_cast<int>(rng.uniform_int(255));
  c.backoff_stages = static_cast<int>(rng.uniform_int(9));
  return c;
}

// The damped iteration converges for every practical population, and the
// converged solution is a valid probability assignment: everything in
// [0, 1], the slot-event probabilities partition, and the success mass
// decomposes over classes.
TEST(MultiDcfProperty, SolverConvergesToValidProbabilities) {
  const auto config = proptest::Config::from_env(0xb1a7c41, 80);
  proptest::check(
      "multi-class fixed point converges", config,
      [&](util::Rng& rng, std::uint64_t) {
        std::vector<DcfClass> classes{random_class(rng)};
        if (rng.uniform_int(2) == 1) classes.push_back(random_class(rng));

        MultiDcfSolution s;
        ASSERT_NO_THROW(s = solve_dcf_classes(classes));
        double success_sum = 0.0;
        for (std::size_t c = 0; c < classes.size(); ++c) {
          EXPECT_GT(s.attempt_probability[c], 0.0);
          EXPECT_LE(s.attempt_probability[c], 1.0);
          EXPECT_GE(s.collision_probability[c], 0.0);
          EXPECT_LT(s.collision_probability[c], 1.0);
          EXPECT_GE(s.class_success_prob[c], 0.0);
          EXPECT_LE(s.class_success_prob[c], 1.0);
          EXPECT_NEAR(s.per_station_success_prob[c],
                      s.class_success_prob[c] / classes[c].stations, 1e-15);
          success_sum += s.class_success_prob[c];
        }
        EXPECT_NEAR(s.idle_prob + s.any_transmission_prob, 1.0, 1e-12);
        EXPECT_NEAR(s.success_prob, success_sum, 1e-12);
        EXPECT_LE(s.success_prob, s.any_transmission_prob + 1e-12);
      });
}

// A single class must reproduce solve_dcf bit for bit at any random
// geometry — the degeneracy contract the cell engine's n=1 acceptance
// criterion builds on.  (The aggregate success probability is NOT monotone
// in n — it rises from n=1 to n=2 — which is why the throughput-share
// property below is stated per station.)
TEST(MultiDcfProperty, SingleClassIsBitwiseSolveDcf) {
  const auto config = proptest::Config::from_env(0xb1a7c42, 120);
  proptest::check(
      "single class degenerates to solve_dcf", config,
      [&](util::Rng& rng, std::uint64_t) {
        const DcfClass c = random_class(rng);
        const DcfSolution scalar =
            solve_dcf({c.stations, c.cw_min, c.backoff_stages});
        const MultiDcfSolution multi = solve_dcf_classes({c});
        EXPECT_EQ(multi.attempt_probability[0], scalar.attempt_probability);
        EXPECT_EQ(multi.collision_probability[0],
                  scalar.collision_probability);
        EXPECT_EQ(multi.iterations, scalar.iterations);
      });
}

// One station's saturation throughput share never improves when another
// station joins the cell: per_station_success_prob is non-increasing in n
// at any fixed window geometry.
TEST(MultiDcfProperty, PerStationShareNonIncreasingInPopulation) {
  const auto config = proptest::Config::from_env(0xb1a7c43, 60);
  proptest::check(
      "per-station share monotone in n", config,
      [&](util::Rng& rng, std::uint64_t) {
        const int w = 2 + static_cast<int>(rng.uniform_int(255));
        const int m = static_cast<int>(rng.uniform_int(9));
        double previous = 2.0;  // above any probability.
        for (int n = 1; n <= 12; ++n) {
          const MultiDcfSolution s = solve_dcf_classes({{n, w, m}});
          EXPECT_LE(s.per_station_success_prob[0], previous + 1e-12)
              << "n=" << n << " W=" << w << " m=" << m;
          previous = s.per_station_success_prob[0];
        }
      });
}

// Relabeling the classes permutes the solution without changing it: the
// Jacobi update reads only the previous iterate, so a two-class cell is
// order-invariant bitwise (every cross-class product has one factor).
TEST(MultiDcfProperty, TwoClassPermutationSymmetry) {
  const auto config = proptest::Config::from_env(0xb1a7c44, 60);
  proptest::check(
      "class order invariance", config,
      [&](util::Rng& rng, std::uint64_t) {
        const DcfClass a = random_class(rng);
        const DcfClass b = random_class(rng);
        const MultiDcfSolution ab = solve_dcf_classes({a, b});
        const MultiDcfSolution ba = solve_dcf_classes({b, a});
        EXPECT_EQ(ab.attempt_probability[0], ba.attempt_probability[1]);
        EXPECT_EQ(ab.attempt_probability[1], ba.attempt_probability[0]);
        EXPECT_EQ(ab.collision_probability[0], ba.collision_probability[1]);
        EXPECT_EQ(ab.collision_probability[1], ba.collision_probability[0]);
        EXPECT_EQ(ab.per_station_success_prob[0],
                  ba.per_station_success_prob[1]);
        EXPECT_EQ(ab.idle_prob, ba.idle_prob);
        EXPECT_EQ(ab.iterations, ba.iterations);
      });
}

// Adding background stations can only hurt the video class: its collision
// probability rises and its throughput share falls.
TEST(MultiDcfProperty, BackgroundTrafficNeverHelps) {
  const auto config = proptest::Config::from_env(0xb1a7c45, 60);
  proptest::check(
      "background monotonicity", config,
      [&](util::Rng& rng, std::uint64_t) {
        const DcfClass video = random_class(rng);
        DcfClass background = random_class(rng);
        const MultiDcfSolution alone = solve_dcf_classes({video});
        const MultiDcfSolution shared =
            solve_dcf_classes({video, background});
        EXPECT_GT(shared.collision_probability[0],
                  alone.collision_probability[0] - 1e-12);
        EXPECT_LE(shared.per_station_success_prob[0],
                  alone.per_station_success_prob[0] + 1e-12);
      });
}

}  // namespace
}  // namespace tv::wifi
