#include "queueing/service_time.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace tv::queueing {
namespace {

TEST(BackoffModel, MomentsMatchClosedForms) {
  const BackoffModel b{0.8, 500.0};
  // E[K] = 0.25 collisions, each Exp(500).
  EXPECT_NEAR(b.mean(), 0.25 / 500.0, 1e-15);
  EXPECT_NEAR(b.moment2(), 2.0 * 0.2 / (0.64 * 500.0 * 500.0), 1e-15);
  EXPECT_NEAR(b.moment3(), 6.0 * 0.2 / (0.512 * std::pow(500.0, 3)), 1e-18);
}

TEST(BackoffModel, MomentsMatchMonteCarlo) {
  const BackoffModel b{0.7, 300.0};
  util::Rng rng{13};
  double m1 = 0.0;
  double m2 = 0.0;
  constexpr int kN = 400000;
  for (int i = 0; i < kN; ++i) {
    const double x = b.sample(rng);
    m1 += x;
    m2 += x * x;
  }
  m1 /= kN;
  m2 /= kN;
  EXPECT_NEAR(m1, b.mean(), 0.02 * b.mean());
  EXPECT_NEAR(m2, b.moment2(), 0.05 * b.moment2());
}

TEST(BackoffModel, LstAtZeroIsOneAndSlopeIsMinusMean) {
  const BackoffModel b{0.78, 420.0};
  EXPECT_NEAR(b.lst(0.0), 1.0, 1e-15);
  const double h = 1e-4;
  EXPECT_NEAR((b.lst(h) - b.lst(-h)) / (2.0 * h), -b.mean(),
              1e-6 * b.mean() + 1e-12);
}

TEST(BackoffModel, PerfectMacMeansNoBackoff) {
  const BackoffModel b{1.0, 100.0};
  EXPECT_DOUBLE_EQ(b.mean(), 0.0);
  EXPECT_DOUBLE_EQ(b.lst(3.0), 1.0);
  util::Rng rng{1};
  EXPECT_DOUBLE_EQ(b.sample(rng), 0.0);
}

ServiceTimeModel example_model() {
  return ServiceTimeModel{
      {{0.25, 3e-3, 2e-4}, {0.75, 1e-3, 1e-4}},
      BackoffModel{0.8, 400.0}};
}

TEST(ServiceTimeModel, MeanIsMixturePlusBackoff) {
  const auto m = example_model();
  EXPECT_NEAR(m.mean(), 0.25 * 3e-3 + 0.75 * 1e-3 + (1.0 - 0.8) / (0.8 * 400.0),
              1e-15);
}

TEST(ServiceTimeModel, MomentsMatchMonteCarlo) {
  const auto m = example_model();
  util::Rng rng{21};
  double m1 = 0.0;
  double m2 = 0.0;
  double m3 = 0.0;
  constexpr int kN = 500000;
  for (int i = 0; i < kN; ++i) {
    const double x = m.sample(rng);
    m1 += x;
    m2 += x * x;
    m3 += x * x * x;
  }
  m1 /= kN;
  m2 /= kN;
  m3 /= kN;
  EXPECT_NEAR(m1, m.mean(), 0.01 * m.mean());
  EXPECT_NEAR(m2, m.moment2(), 0.03 * m.moment2());
  EXPECT_NEAR(m3, m.moment3(), 0.08 * m.moment3());
}

TEST(ServiceTimeModel, LstDerivativesGiveMoments) {
  const auto m = example_model();
  EXPECT_NEAR(m.lst(0.0), 1.0, 1e-15);
  const double h = 1e-3;
  const double d1 = (m.lst(h) - m.lst(-h)) / (2.0 * h);
  EXPECT_NEAR(-d1, m.mean(), 1e-8);
  const double d2 = (m.lst(h) - 2.0 * m.lst(0.0) + m.lst(-h)) / (h * h);
  EXPECT_NEAR(d2, m.moment2(), 1e-8);
}

TEST(ServiceTimeModel, MatrixMgfOnScalarMatchesLst) {
  // For a 1x1 "matrix" A = [-s], E[expm(A S)] must equal the LST at s.
  const auto m = example_model();
  for (double s : {10.0, 100.0, 350.0}) {
    util::Matrix a(1, 1);
    a(0, 0) = -s;
    EXPECT_NEAR(m.matrix_mgf(a)(0, 0), m.lst(s), 1e-10);
  }
}

TEST(ServiceTimeModel, FromParametersBuildsFourClasses) {
  ServiceParameters p;
  p.p_i = 0.3;
  p.q_i = 1.0;
  p.q_p = 0.5;
  p.enc_i_mean = 2e-3;
  p.enc_p_mean = 1e-3;
  p.tx_i_mean = 3e-3;
  p.tx_p_mean = 1e-3;
  p.success_prob = 0.9;
  p.backoff_rate = 500.0;
  const auto m = ServiceTimeModel::from_parameters(p);
  // weights: I-enc 0.3, P-enc 0.35, P-clear 0.35 (I-clear weight 0 dropped).
  ASSERT_EQ(m.components().size(), 3u);
  double total = 0.0;
  for (const auto& c : m.components()) total += c.weight;
  EXPECT_NEAR(total, 1.0, 1e-12);
  // Expected mean: 0.3*(5e-3) + 0.35*(2e-3) + 0.35*(1e-3) + backoff.
  const double backoff = (0.1 / 0.9) / 500.0;
  EXPECT_NEAR(m.mean(), 0.3 * 5e-3 + 0.35 * 2e-3 + 0.35 * 1e-3 + backoff,
              1e-12);
}

TEST(ServiceTimeModel, ValidatesInputs) {
  EXPECT_THROW(ServiceTimeModel({}, BackoffModel{0.9, 1.0}),
               std::invalid_argument);
  // Weights must sum to one.
  EXPECT_THROW(ServiceTimeModel({{0.5, 1e-3, 0.0}}, BackoffModel{0.9, 1.0}),
               std::invalid_argument);
  // Jitter beyond the minor-variations regime is rejected (would break the
  // Gaussian MGF in the solver).
  EXPECT_THROW(ServiceTimeModel({{1.0, 1e-3, 0.9e-3}}, BackoffModel{0.9, 1.0}),
               std::invalid_argument);
  // Bad backoff.
  EXPECT_THROW(ServiceTimeModel({{1.0, 1e-3, 0.0}}, BackoffModel{0.0, 1.0}),
               std::invalid_argument);
  ServiceParameters p;
  p.q_i = 1.4;
  EXPECT_THROW(ServiceTimeModel::from_parameters(p), std::invalid_argument);
}

TEST(ServiceTimeModel, SamplesAreNonNegative) {
  const auto m = example_model();
  util::Rng rng{5};
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GE(m.sample(rng), 0.0);
  }
}

}  // namespace
}  // namespace tv::queueing
