// Chaos-plan parsing and the ChaosSocket's fault injection, which the
// multi-session harness leans on for its determinism guarantees.
#include "live/chaos.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "live/event_loop.hpp"
#include "live/udp.hpp"

namespace tv::live {
namespace {

TEST(ChaosPlan, ParsesEveryKey) {
  const ChaosPlan plan = chaos_plan_from_string(
      "eagain=0.2,short=0.05,spurious=0.1,drop=0.05,corrupt=0.02,"
      "truncate=0.01,dup=0.02,loss=0.1,burst=4,ctrl-drop=0.3,kill=0.1,"
      "outage=2:0.5;8:0.25,stall=4:1");
  EXPECT_DOUBLE_EQ(plan.eagain_prob, 0.2);
  EXPECT_DOUBLE_EQ(plan.short_send_prob, 0.05);
  EXPECT_DOUBLE_EQ(plan.spurious_wakeup_prob, 0.1);
  ASSERT_TRUE(plan.faults.has_value());
  EXPECT_DOUBLE_EQ(plan.faults->drop_prob, 0.05);
  EXPECT_DOUBLE_EQ(plan.faults->corrupt_payload_prob, 0.02);
  EXPECT_DOUBLE_EQ(plan.faults->truncate_prob, 0.01);
  EXPECT_DOUBLE_EQ(plan.faults->duplicate_prob, 0.02);
  ASSERT_TRUE(plan.channel.has_value());
  EXPECT_DOUBLE_EQ(plan.channel->mean_loss_prob, 0.1);
  EXPECT_DOUBLE_EQ(plan.channel->mean_burst_length, 4.0);
  EXPECT_DOUBLE_EQ(plan.ctrl_drop_prob, 0.3);
  EXPECT_DOUBLE_EQ(plan.kill_prob, 0.1);
  ASSERT_EQ(plan.outages.size(), 2u);
  EXPECT_DOUBLE_EQ(plan.outages[0].start_s, 2.0);
  EXPECT_DOUBLE_EQ(plan.outages[0].duration_s, 0.5);
  EXPECT_DOUBLE_EQ(plan.outages[1].start_s, 8.0);
  ASSERT_EQ(plan.stalls.size(), 1u);
  EXPECT_DOUBLE_EQ(plan.stalls[0].start_s, 4.0);
  EXPECT_TRUE(plan.any_egress_fault());
}

TEST(ChaosPlan, EmptySpecIsBenign) {
  const ChaosPlan plan = chaos_plan_from_string("");
  EXPECT_FALSE(plan.any_egress_fault());
  EXPECT_FALSE(plan.faults.has_value());
  EXPECT_FALSE(plan.channel.has_value());
}

TEST(ChaosPlan, EintrIsAnAliasForSpurious) {
  const ChaosPlan plan = chaos_plan_from_string("eintr=0.5");
  EXPECT_DOUBLE_EQ(plan.spurious_wakeup_prob, 0.5);
}

TEST(ChaosPlan, RejectsMalformedSpecs) {
  EXPECT_THROW((void)chaos_plan_from_string("nonsense=1"),
               std::invalid_argument);
  EXPECT_THROW((void)chaos_plan_from_string("eagain"), std::invalid_argument);
  EXPECT_THROW((void)chaos_plan_from_string("eagain=zzz"),
               std::invalid_argument);
  EXPECT_THROW((void)chaos_plan_from_string("eagain=1.5"),
               std::invalid_argument);
  EXPECT_THROW((void)chaos_plan_from_string("outage=5"),
               std::invalid_argument);
  EXPECT_THROW((void)chaos_plan_from_string("outage=5:-1"),
               std::invalid_argument);
}

TEST(ChaosPlan, ValidateRejectsOutOfRangeProbabilities) {
  ChaosPlan plan;
  plan.kill_prob = -0.1;
  EXPECT_THROW(plan.validate(), std::invalid_argument);
  plan.kill_prob = 0.0;
  plan.short_send_prob = 2.0;
  EXPECT_THROW(plan.validate(), std::invalid_argument);
}

struct Harness {
  EventLoop loop{ClockMode::kVirtual};
  UdpSocket tx;
  UdpSocket rx;

  Harness() {
    tx.bind(Endpoint{});
    rx.bind(Endpoint{});
  }

  std::vector<std::vector<std::uint8_t>> drain() {
    std::vector<std::vector<std::uint8_t>> got;
    while (auto d = rx.receive()) got.push_back(std::move(d->payload));
    return got;
  }
};

TEST(ChaosSocket, InjectedEagainNeverReachesTheWire) {
  Harness h;
  ChaosPlan plan;
  plan.eagain_prob = 1.0;
  ChaosSocket chaos{h.loop, h.tx, plan, 7};
  const std::vector<std::uint8_t> payload = {1, 2, 3, 4};
  EXPECT_EQ(chaos.send_to(h.rx.local_endpoint(), payload),
            SendOutcome::kAgain);
  EXPECT_TRUE(h.drain().empty());
  EXPECT_EQ(chaos.stats().eagain_injected, 1u);
  EXPECT_EQ(chaos.stats().sends, 1u);
}

TEST(ChaosSocket, ShortSendDeliversARunt) {
  Harness h;
  ChaosPlan plan;
  plan.short_send_prob = 1.0;
  ChaosSocket chaos{h.loop, h.tx, plan, 7};
  const std::vector<std::uint8_t> payload = {1, 2, 3, 4, 5, 6};
  EXPECT_EQ(chaos.send_to(h.rx.local_endpoint(), payload),
            SendOutcome::kShort);
  const auto got = h.drain();
  ASSERT_EQ(got.size(), 1u);
  // Half the datagram made it: the receiver sees a truncated copy.
  EXPECT_EQ(got[0], (std::vector<std::uint8_t>{1, 2, 3}));
  EXPECT_EQ(chaos.stats().short_sends_injected, 1u);
}

TEST(ChaosSocket, OutageSwallowsSendsButReportsSuccess) {
  // Inside the window the sender believes the send worked (loss is
  // invisible to UDP); outside it the datagram flows again.
  Harness h;
  ChaosPlan plan;
  plan.outages = {{1.0, 1.0}};
  ChaosSocket chaos{h.loop, h.tx, plan, 7};
  const std::vector<std::uint8_t> payload = {9};

  std::size_t delivered = 0;
  h.loop.schedule_at(1.5, [&] {
    EXPECT_EQ(chaos.send_to(h.rx.local_endpoint(), payload),
              SendOutcome::kSent);
  });
  h.loop.schedule_at(2.5, [&] {
    EXPECT_EQ(chaos.send_to(h.rx.local_endpoint(), payload),
              SendOutcome::kSent);
  });
  h.loop.watch_readable(h.rx.fd(), [&] {
    while (h.rx.receive()) ++delivered;
    h.loop.unwatch(h.rx.fd());
  });
  h.loop.run();
  EXPECT_EQ(delivered, 1u);  // only the post-outage send.
  EXPECT_EQ(chaos.stats().dropped, 1u);
}

TEST(ChaosSocket, SpuriousWakeupHidesQueuedDataWithoutLosingIt) {
  Harness h;
  ChaosPlan plan;
  plan.spurious_wakeup_prob = 1.0;
  ChaosSocket chaos{h.loop, h.rx, plan, 7};
  const std::vector<std::uint8_t> payload = {5};
  ASSERT_EQ(h.tx.send_to(h.rx.local_endpoint(), payload),
            SendOutcome::kSent);
  // Every receive is interrupted — but the datagram stays queued in the
  // kernel, visible to a direct read.
  EXPECT_FALSE(chaos.receive().has_value());
  EXPECT_FALSE(chaos.receive().has_value());
  EXPECT_EQ(chaos.stats().spurious_wakeups, 2u);
  std::optional<Datagram> direct;
  for (int spins = 0; spins < 1000 && !direct; ++spins) {
    direct = h.rx.receive();
  }
  ASSERT_TRUE(direct.has_value());
  EXPECT_EQ(direct->payload, payload);
}

TEST(ChaosSocket, SameSeedSameDamage) {
  ChaosPlan plan;
  plan.eagain_prob = 0.3;
  plan.short_send_prob = 0.2;
  const std::vector<std::uint8_t> payload = {1, 2, 3, 4, 5, 6, 7, 8};

  auto outcomes = [&](std::uint64_t seed) {
    Harness h;
    ChaosSocket chaos{h.loop, h.tx, plan, seed};
    std::vector<SendOutcome> seen;
    for (int i = 0; i < 64; ++i) {
      seen.push_back(chaos.send_to(h.rx.local_endpoint(), payload));
    }
    return seen;
  };
  EXPECT_EQ(outcomes(42), outcomes(42));
  EXPECT_NE(outcomes(42), outcomes(43));  // and the seed actually matters.
}

}  // namespace
}  // namespace tv::live
