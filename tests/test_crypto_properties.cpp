// Statistical properties of the ciphers: avalanche behaviour and keystream
// uniformity.  These are the properties that make "encrypted packet ==
// erasure for the eavesdropper" a sound modeling assumption: a marked
// payload carries no usable structure.
#include <gtest/gtest.h>

#include <array>
#include <bit>
#include <vector>

#include "crypto/aes.hpp"
#include "crypto/des.hpp"
#include "crypto/ofb.hpp"
#include "crypto/suite.hpp"
#include "util/rng.hpp"

namespace tv::crypto {
namespace {

int hamming(std::span<const std::uint8_t> a, std::span<const std::uint8_t> b) {
  int bits = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    bits += std::popcount(static_cast<unsigned>(a[i] ^ b[i]));
  }
  return bits;
}

class Avalanche : public ::testing::TestWithParam<Algorithm> {};

TEST_P(Avalanche, SingleBitPlaintextFlipChangesHalfTheCiphertext) {
  const auto cipher = make_cipher_from_seed(GetParam(), 11);
  const std::size_t block = cipher->block_size();
  util::Rng rng{17};
  double total_frac = 0.0;
  constexpr int kTrials = 200;
  for (int t = 0; t < kTrials; ++t) {
    std::vector<std::uint8_t> pt(block);
    for (auto& b : pt) b = static_cast<std::uint8_t>(rng());
    std::vector<std::uint8_t> pt2 = pt;
    pt2[rng.uniform_int(block)] ^=
        static_cast<std::uint8_t>(1u << rng.uniform_int(8));
    std::vector<std::uint8_t> c1(block);
    std::vector<std::uint8_t> c2(block);
    cipher->encrypt_block(pt, c1);
    cipher->encrypt_block(pt2, c2);
    total_frac +=
        static_cast<double>(hamming(c1, c2)) / (8.0 * static_cast<double>(block));
  }
  // Ideal avalanche flips 50% of output bits.
  EXPECT_NEAR(total_frac / kTrials, 0.5, 0.03);
}

TEST_P(Avalanche, SingleBitKeyFlipChangesHalfTheCiphertext) {
  util::Rng rng{23};
  std::vector<std::uint8_t> key(key_size(GetParam()));
  for (auto& b : key) b = static_cast<std::uint8_t>(rng());
  const auto cipher = make_cipher(GetParam(), key);
  double total_frac = 0.0;
  constexpr int kTrials = 120;
  const std::size_t block = cipher->block_size();
  // DES keys carry a parity bit in each byte's LSB that the key schedule
  // discards (ANSI X3.92); flipping it cannot change the ciphertext, so
  // restrict flips to effective key bits for the DES family.
  const int low_bit = GetParam() == Algorithm::kTripleDes ? 1 : 0;
  for (int t = 0; t < kTrials; ++t) {
    auto key2 = key;
    key2[rng.uniform_int(key2.size())] ^= static_cast<std::uint8_t>(
        1u << (low_bit + rng.uniform_int(static_cast<std::uint64_t>(
                   8 - low_bit))));
    const auto cipher2 = make_cipher(GetParam(), key2);
    std::vector<std::uint8_t> pt(block);
    for (auto& b : pt) b = static_cast<std::uint8_t>(rng());
    std::vector<std::uint8_t> c1(block);
    std::vector<std::uint8_t> c2(block);
    cipher->encrypt_block(pt, c1);
    cipher2->encrypt_block(pt, c2);
    total_frac +=
        static_cast<double>(hamming(c1, c2)) / (8.0 * static_cast<double>(block));
  }
  EXPECT_NEAR(total_frac / kTrials, 0.5, 0.04);
}

INSTANTIATE_TEST_SUITE_P(Ciphers, Avalanche,
                         ::testing::Values(Algorithm::kAes128,
                                           Algorithm::kAes256,
                                           Algorithm::kTripleDes));

TEST(Keystream, OfbOutputLooksUniform) {
  // Encrypt all-zero data: the ciphertext IS the keystream.  Its byte mean
  // and bit balance must look uniform — this is what denies the
  // eavesdropper any residual video structure.
  const auto cipher = make_cipher_from_seed(Algorithm::kAes256, 31);
  std::vector<std::uint8_t> iv(16, 0x9c);
  std::vector<std::uint8_t> zeros(200000, 0);
  const auto ks = ofb_transform(*cipher, iv, zeros);
  double mean = 0.0;
  long ones = 0;
  for (std::uint8_t b : ks) {
    mean += b;
    ones += std::popcount(static_cast<unsigned>(b));
  }
  mean /= static_cast<double>(ks.size());
  const double bit_frac =
      static_cast<double>(ones) / (8.0 * static_cast<double>(ks.size()));
  EXPECT_NEAR(mean, 127.5, 1.0);
  EXPECT_NEAR(bit_frac, 0.5, 0.005);

  // Byte histogram chi-square against uniform: 255 dof, accept < 350
  // (p ~ 1e-4 false-positive under uniformity).
  std::array<long, 256> hist{};
  for (std::uint8_t b : ks) ++hist[b];
  const double expected = static_cast<double>(ks.size()) / 256.0;
  double chi2 = 0.0;
  for (long h : hist) {
    const double d = static_cast<double>(h) - expected;
    chi2 += d * d / expected;
  }
  EXPECT_LT(chi2, 350.0);
}

TEST(Keystream, EncryptedVideoPayloadLosesItsStructure) {
  // Video payloads are highly non-uniform (skip runs, small varints); the
  // encrypted version must not be.
  const auto cipher = make_cipher_from_seed(Algorithm::kAes128, 41);
  std::vector<std::uint8_t> iv(16, 0x01);
  std::vector<std::uint8_t> payload(50000);
  util::Rng rng{3};
  for (auto& b : payload) {
    b = rng.bernoulli(0.7) ? 0 : static_cast<std::uint8_t>(rng.uniform_int(8));
  }
  double plain_mean = 0.0;
  for (auto b : payload) plain_mean += b;
  plain_mean /= static_cast<double>(payload.size());
  ASSERT_LT(plain_mean, 32.0);  // clearly structured input.
  const auto ct = ofb_transform(*cipher, iv, payload);
  double ct_mean = 0.0;
  for (auto b : ct) ct_mean += b;
  ct_mean /= static_cast<double>(ct.size());
  EXPECT_NEAR(ct_mean, 127.5, 2.0);
}

TEST(Keystream, DistinctSegmentIvsGiveUncorrelatedStreams) {
  const auto cipher = make_cipher_from_seed(Algorithm::kAes256, 51);
  std::vector<std::uint8_t> flow_iv(16, 0x77);
  std::vector<std::uint8_t> zeros(4096, 0);
  const auto k1 =
      ofb_transform(*cipher, segment_iv(*cipher, flow_iv, 1), zeros);
  const auto k2 =
      ofb_transform(*cipher, segment_iv(*cipher, flow_iv, 2), zeros);
  // Hamming distance between the streams ~ 50% of bits.
  const double frac =
      static_cast<double>(hamming(k1, k2)) / (8.0 * zeros.size());
  EXPECT_NEAR(frac, 0.5, 0.02);
}

}  // namespace
}  // namespace tv::crypto
