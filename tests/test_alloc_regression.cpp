// Steady-state allocation regression for the zero-copy packet path.
//
// The arena refactor's core promise: once a workload's packets are built,
// pushing them through core::simulate_transfer costs a small, constant
// number of heap allocations per transfer (the result vectors), not per
// packet.  This suite pins that by replacing the global operator new with
// a counting shim — which is why it lives in its own test binary
// (tv_alloc_tests): the shim is process-wide and must not disturb the
// other tiers.
//
// The shim routes through std::malloc/free, so sanitizer builds still see
// and track every allocation (run_checks.sh --alloc-smoke runs this suite
// under ASan).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <vector>

#include "core/experiment.hpp"
#include "core/pipeline.hpp"
#include "crypto/suite.hpp"
#include "net/packetizer.hpp"
#include "util/arena.hpp"

namespace {

std::atomic<std::uint64_t> g_allocations{0};

void* counted_alloc(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc{};
}

}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace tv {
namespace {

struct Transfer {
  util::Arena arena;
  std::vector<net::VideoPacket> packets;
  core::PipelineConfig config;
};

Transfer make_transfer(int frames) {
  Transfer t;
  const auto workload =
      core::build_workload(video::MotionLevel::kLow, 30, frames, 4242);
  t.packets = net::clone_packets(workload.packets, t.arena);
  const auto cipher = crypto::make_cipher_from_seed(
      crypto::Algorithm::kAes128, 77, crypto::CipherBackend::kAuto);
  const std::vector<std::uint8_t> iv(cipher->block_size(), 0x3c);
  net::encrypt_selected(t.packets,
                        std::vector<bool>(t.packets.size(), true), *cipher,
                        iv);
  t.config.device = core::samsung_galaxy_s2();
  t.config.algorithm = crypto::Algorithm::kAes128;
  return t;
}

/// Allocations of one steady-state transfer: the first call pays any
/// lazy one-time costs, the second is what the bench loop measures.
std::uint64_t transfer_allocations(const Transfer& t) {
  (void)core::simulate_transfer(t.config, t.packets, 4242);
  const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  (void)core::simulate_transfer(t.config, t.packets, 4242);
  return g_allocations.load(std::memory_order_relaxed) - before;
}

TEST(AllocRegression, TransferAllocationsAreConstantPerTransfer) {
  const Transfer small = make_transfer(30);
  const Transfer large = make_transfer(120);
  ASSERT_GT(large.packets.size(), 2 * small.packets.size());

  const std::uint64_t small_allocs = transfer_allocations(small);
  const std::uint64_t large_allocs = transfer_allocations(large);

  // Per-transfer cost is the handful of result vectors; quadrupling the
  // packet count must not add a single allocation.
  EXPECT_EQ(small_allocs, large_allocs);
  EXPECT_LE(large_allocs, 16u);

  const double per_packet = static_cast<double>(large_allocs) /
                            static_cast<double>(large.packets.size());
  EXPECT_LT(per_packet, 0.1) << "allocations per packet regressed";
}

TEST(AllocRegression, ArenaCloneIsOneAllocationPerChunkNotPerPacket) {
  const auto workload =
      core::build_workload(video::MotionLevel::kLow, 30, 60, 4242);
  util::Arena arena;
  // Warm the arena so the clone below reuses retained chunks.
  (void)net::clone_packets(workload.packets, arena);
  arena.reset();

  const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  const auto packets = net::clone_packets(workload.packets, arena);
  const std::uint64_t clones =
      g_allocations.load(std::memory_order_relaxed) - before;

  // One allocation for the packet vector itself; payload bytes all land in
  // the arena's retained chunks.
  EXPECT_LE(clones, 2u) << "cloning " << packets.size()
                        << " packets should not allocate per packet";
}

}  // namespace
}  // namespace tv
