// Property-based OFB invariants (Section 5) over random keys, IVs and
// segment lengths for every algorithm of Table 1, via tests/proptest.hpp.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "crypto/ofb.hpp"
#include "crypto/suite.hpp"
#include "proptest.hpp"

namespace tv::crypto {
namespace {

constexpr Algorithm kAlgorithms[] = {Algorithm::kAes128, Algorithm::kAes256,
                                     Algorithm::kTripleDes};

class OfbProperty : public ::testing::TestWithParam<Algorithm> {};

// OFB is an involution: encryption and decryption are the same XOR against
// the same keystream, so applying the transform twice restores the input
// for any key, IV and length (including the empty segment).
TEST_P(OfbProperty, EncryptDecryptIdentity) {
  const Algorithm alg = GetParam();
  const auto config = proptest::Config::from_env(0x0fb1d, 40);
  proptest::check("OFB encrypt-decrypt identity", config,
                  [&](util::Rng& rng, std::uint64_t) {
                    const auto key =
                        proptest::random_bytes(rng, key_size(alg));
                    const auto cipher = make_cipher(alg, key);
                    const auto iv =
                        proptest::random_bytes(rng, cipher->block_size());
                    const auto plaintext = proptest::random_bytes(
                        rng, proptest::random_size(rng, 0, 384));
                    const auto ciphertext =
                        ofb_transform(*cipher, iv, plaintext);
                    ASSERT_EQ(ciphertext.size(), plaintext.size());
                    EXPECT_EQ(ofb_transform(*cipher, iv, ciphertext),
                              plaintext);
                  });
}

// The keystream depends only on (key, IV), never on the data or on how the
// segment is chunked: a shorter segment's ciphertext is a prefix of a
// longer one's, and an incremental OfbStream split at random points agrees
// with the one-shot transform.
TEST_P(OfbProperty, KeystreamPrefixInvariance) {
  const Algorithm alg = GetParam();
  const auto config = proptest::Config::from_env(0x0fb2d, 40);
  proptest::check(
      "OFB keystream prefix invariance", config,
      [&](util::Rng& rng, std::uint64_t) {
        const auto key = proptest::random_bytes(rng, key_size(alg));
        const auto cipher = make_cipher(alg, key);
        const auto iv = proptest::random_bytes(rng, cipher->block_size());
        const auto data =
            proptest::random_bytes(rng, proptest::random_size(rng, 1, 384));
        const auto full = ofb_transform(*cipher, iv, data);

        const std::size_t cut = proptest::random_size(rng, 0, data.size());
        const std::vector<std::uint8_t> head(data.begin(),
                                             data.begin() +
                                                 static_cast<long>(cut));
        const auto head_ct = ofb_transform(*cipher, iv, head);
        EXPECT_TRUE(std::equal(head_ct.begin(), head_ct.end(), full.begin()))
            << "prefix of length " << cut << " diverged";

        std::vector<std::uint8_t> chunked = data;
        OfbStream stream{*cipher, iv};
        std::size_t pos = 0;
        while (pos < chunked.size()) {
          const std::size_t len =
              proptest::random_size(rng, 1, chunked.size() - pos);
          stream.apply(std::span<std::uint8_t>{chunked.data() + pos, len});
          pos += len;
        }
        EXPECT_EQ(chunked, full);
      });
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, OfbProperty,
                         ::testing::ValuesIn(kAlgorithms),
                         [](const auto& info) {
                           return std::string{to_string(info.param)} == "3DES"
                                      ? std::string{"TripleDes"}
                                      : std::string{to_string(info.param)};
                         });

// --- Harness self-tests. ---------------------------------------------------

TEST(ProptestHarness, CasesAreDeterministicInSeed) {
  proptest::Config config;
  config.seed = 42;
  config.cases = 5;
  std::vector<std::vector<std::uint8_t>> first, second;
  proptest::check("collect", config, [&](util::Rng& rng, std::uint64_t) {
    first.push_back(proptest::random_bytes(rng, 16));
  });
  proptest::check("collect", config, [&](util::Rng& rng, std::uint64_t) {
    second.push_back(proptest::random_bytes(rng, 16));
  });
  EXPECT_EQ(first, second);
}

TEST(ProptestHarness, FailurePrintsReproductionSeed) {
  ::testing::TestPartResultArray results;
  {
    ::testing::ScopedFakeTestPartResultReporter reporter(
        ::testing::ScopedFakeTestPartResultReporter::
            INTERCEPT_ONLY_CURRENT_THREAD,
        &results);
    proptest::Config config;
    config.seed = 123;
    config.cases = 10;
    proptest::check("always fails", config,
                    [](util::Rng&, std::uint64_t) {
                      ADD_FAILURE() << "intentional probe failure";
                    });
  }
  // One re-emitted body failure plus the reproduction summary, and the
  // property stopped at the first failing case.
  ASSERT_EQ(results.size(), 2);
  const std::string summary = results.GetTestPartResult(1).message();
  EXPECT_NE(summary.find("TV_PROPTEST_SEED=123"), std::string::npos)
      << summary;
  EXPECT_NE(summary.find("TV_PROPTEST_CASES=1"), std::string::npos)
      << summary;
}

}  // namespace
}  // namespace tv::crypto
