#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.hpp"

namespace tv::util {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.ci95_halfwidth(), 0.0);
}

TEST(RunningStats, KnownSample) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // unbiased.
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, SingleValueHasZeroVariance) {
  RunningStats s;
  s.add(3.25);
  EXPECT_DOUBLE_EQ(s.mean(), 3.25);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  Rng rng{5};
  RunningStats all;
  RunningStats left;
  RunningStats right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.gaussian(1.0, 2.0);
    all.add(x);
    (i < 400 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

// The sweep engine's determinism contract (docs/sweeps.md): count/min/max
// are exactly merge-order independent, and folding the same partials in
// the same order always reproduces the same bits.
TEST(RunningStats, MergeOrderInvariants) {
  Rng rng{11};
  std::vector<RunningStats> parts(7);
  for (int i = 0; i < 700; ++i) {
    parts[i % parts.size()].add(rng.gaussian(3.0, 5.0));
  }

  RunningStats forward;
  for (const auto& p : parts) forward.merge(p);
  RunningStats forward_again;
  for (const auto& p : parts) forward_again.merge(p);
  // Same fold order -> bit-identical everything.
  EXPECT_EQ(forward.mean(), forward_again.mean());
  EXPECT_EQ(forward.variance(), forward_again.variance());

  RunningStats backward;
  for (auto it = parts.rbegin(); it != parts.rend(); ++it) {
    backward.merge(*it);
  }
  // Any fold order -> exactly equal count/min/max, near-equal moments.
  EXPECT_EQ(backward.count(), forward.count());
  EXPECT_DOUBLE_EQ(backward.min(), forward.min());
  EXPECT_DOUBLE_EQ(backward.max(), forward.max());
  EXPECT_NEAR(backward.mean(), forward.mean(), 1e-12);
  EXPECT_NEAR(backward.variance(), forward.variance(), 1e-9);
}

TEST(RunningStats, MergeWithEmptyIsIdentity) {
  RunningStats a;
  a.add(1.0);
  a.add(2.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.5);
}

TEST(RunningStats, CiShrinksWithSamples) {
  Rng rng{3};
  RunningStats small;
  RunningStats large;
  for (int i = 0; i < 10; ++i) small.add(rng.gaussian(0.0, 1.0));
  for (int i = 0; i < 1000; ++i) large.add(rng.gaussian(0.0, 1.0));
  EXPECT_GT(small.ci95_halfwidth(), large.ci95_halfwidth());
}

TEST(TQuantile, MatchesTable) {
  EXPECT_NEAR(t_quantile_975(1), 12.706, 1e-3);
  EXPECT_NEAR(t_quantile_975(19), 2.093, 1e-3);
  EXPECT_NEAR(t_quantile_975(10000), 1.96, 1e-3);
}

TEST(MeanOf, HandlesEmptyAndValues) {
  EXPECT_EQ(mean_of({}), 0.0);
  const std::vector<double> xs = {1.0, 2.0, 6.0};
  EXPECT_DOUBLE_EQ(mean_of(xs), 3.0);
}

TEST(Percentile, InterpolatesLinearly) {
  std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 2.5);
}

TEST(Percentile, RejectsBadInput) {
  EXPECT_THROW((void)percentile({}, 50.0), std::invalid_argument);
  EXPECT_THROW((void)percentile({1.0}, 101.0), std::invalid_argument);
}

}  // namespace
}  // namespace tv::util
