// Impairment-proxy edge cases: outage-window boundary semantics on the
// live datagram path.  OutageWindow::contains is start-inclusive and
// end-exclusive, and the virtual clock sits exactly on each send time
// when the proxy hears the datagram, so the boundary is exercised with
// no tolerance games.
#include "live/proxy.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "live/event_loop.hpp"
#include "live/udp.hpp"
#include "wifi/gilbert_elliott.hpp"

namespace tv::live {
namespace {

/// Sends one marker byte through the proxy at each scheduled time and
/// returns (receive time, marker) for everything that survived.
std::vector<std::pair<double, std::uint8_t>> run_through_outage(
    const std::vector<wifi::OutageWindow>& outages,
    const std::vector<double>& send_times, ProxyReport* report) {
  EventLoop loop{ClockMode::kVirtual};
  UdpSocket tx;
  tx.bind(Endpoint{});
  UdpSocket proxy_socket;
  proxy_socket.bind(Endpoint{});
  UdpSocket rx;
  rx.bind(Endpoint{});

  ProxyConfig config;
  config.forward_to = rx.local_endpoint();
  config.outages = outages;
  ImpairmentProxy proxy{loop, proxy_socket, proxy_socket, config, nullptr};
  proxy.start();

  std::vector<std::pair<double, std::uint8_t>> received;
  loop.watch_readable(rx.fd(), [&] {
    while (auto d = rx.receive()) {
      received.emplace_back(loop.now_s(), d->payload.at(0));
    }
  });

  const Endpoint in = proxy_socket.local_endpoint();
  for (std::size_t i = 0; i < send_times.size(); ++i) {
    const auto marker = static_cast<std::uint8_t>(i);
    loop.schedule_at(send_times[i], [&tx, in, marker] {
      const std::uint8_t byte[] = {marker};
      ASSERT_EQ(tx.send_to(in, byte), SendOutcome::kSent);
    });
  }
  loop.run();
  proxy.flush();
  *report = proxy.report();
  return received;
}

TEST(ProxyOutage, StartIsInclusiveEndIsExclusive) {
  // Outage [1.0, 2.0): a packet landing exactly at the start is lost,
  // one landing exactly at the end has already left the blackout.
  ProxyReport report;
  const auto received = run_through_outage(
      {{1.0, 1.0}}, {0.5, 1.0, 1.5, 2.0, 2.5}, &report);

  std::vector<std::uint8_t> markers;
  for (const auto& [at, marker] : received) markers.push_back(marker);
  EXPECT_EQ(markers, (std::vector<std::uint8_t>{0, 3, 4}));
  EXPECT_EQ(report.heard, 5u);
  EXPECT_EQ(report.forwarded, 3u);
  EXPECT_EQ(report.dropped, 2u);  // exactly-at-start and mid-window.
}

TEST(ProxyOutage, InstantBeforeStartStillDelivers) {
  ProxyReport report;
  const double epsilon = 1e-9;
  const auto received = run_through_outage(
      {{1.0, 1.0}}, {1.0 - epsilon, 2.0 - epsilon}, &report);

  std::vector<std::uint8_t> markers;
  for (const auto& [at, marker] : received) markers.push_back(marker);
  // Just before the start: delivered.  Just before the end: still inside.
  EXPECT_EQ(markers, (std::vector<std::uint8_t>{0}));
  EXPECT_EQ(report.dropped, 1u);
}

TEST(ProxyOutage, BackToBackWindowsLeaveNoGap) {
  // [1, 2) followed by [2, 3): the shared boundary instant belongs to the
  // second window, so a packet at t=2 is still lost and t=3 survives.
  ProxyReport report;
  const auto received = run_through_outage(
      {{1.0, 1.0}, {2.0, 1.0}}, {2.0, 3.0}, &report);

  std::vector<std::uint8_t> markers;
  for (const auto& [at, marker] : received) markers.push_back(marker);
  EXPECT_EQ(markers, (std::vector<std::uint8_t>{1}));
  EXPECT_EQ(report.dropped, 1u);
}

}  // namespace
}  // namespace tv::live
