// The leakage-vs-cost sweep: countermeasure efficacy, cost accounting,
// spec validation and the byte-identical-at-any-thread-count contract.
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <vector>

#include "analysis/sweep.hpp"
#include "core/experiment.hpp"
#include "util/thread_pool.hpp"

namespace tv::analysis {
namespace {

policy::EncryptionPolicy policy_of(const char* spec) {
  return policy::policy_from_string(spec, crypto::Algorithm::kAes256);
}

/// Run one explicit (policy, shaping) cell.  Every call enumerates a
/// single-cell grid, so with/without-countermeasure pairs share the same
/// derived seed and differ only in the shaping knob.
LeakageCellResult run_cell(const policy::EncryptionPolicy& pol,
                           const policy::ShapingPolicy& shaping) {
  LeakageSpec spec;
  spec.policies = {pol};
  spec.shapings = {shaping};
  const std::vector<LeakageCell> cells = enumerate_leakage_cells(spec);
  const core::Workload workload =
      core::build_workload(spec.motion, spec.gop_size, spec.frames,
                           spec.seed, spec.pipeline.fps);
  return run_leakage_cell(spec, cells.front(), workload);
}

// ---- Each countermeasure knob suppresses its paired leakage metric,
// and its price is visible in the same result (docs/adversary.md).

TEST(AnalysisSweep, PaddingDegradesBitrateRecoveryAtAByteCost) {
  // Padding only pays off alongside encryption: on cleartext packets the
  // pad trailer stays readable and the adversary strips it exactly (the
  // features tier pins that), so the pairing is measured under "all".
  const LeakageCellResult plain =
      run_cell(policy_of("all"), policy::ShapingPolicy{});
  policy::ShapingPolicy pad;
  pad.pad_bucket_bytes = 256;
  const LeakageCellResult padded = run_cell(policy_of("all"), pad);

  EXPECT_GT(padded.metrics.bitrate_rel_error,
            plain.metrics.bitrate_rel_error);
  EXPECT_GT(padded.metrics.trajectory_mae_kbps,
            plain.metrics.trajectory_mae_kbps);
  // The cost side: pad bytes on the wire, charged through the same
  // service/energy models as everything else.
  EXPECT_EQ(plain.pad_overhead_bytes, 0u);
  EXPECT_GT(padded.pad_overhead_bytes, 0u);
  EXPECT_GT(padded.mean_power_w, 0.0);
}

TEST(AnalysisSweep, MarkerHidingErasesTheEncryptedFractionFingerprint) {
  const LeakageCellResult plain =
      run_cell(policy_of("I"), policy::ShapingPolicy{});
  policy::ShapingPolicy hide;
  hide.hide_markers = true;
  const LeakageCellResult hidden = run_cell(policy_of("I"), hide);

  // With visible markers the adversary nails the encrypted fraction;
  // with them hidden its estimate collapses to zero and the error jumps
  // to the policy's true fraction.
  EXPECT_LT(plain.metrics.encrypted_fraction_error, 0.05);
  EXPECT_GT(hidden.metrics.encrypted_fraction_error, 0.10);
  EXPECT_DOUBLE_EQ(hidden.inference.encrypted_fraction_est, 0.0);
  // Marker hiding is free on the delay/energy meters.
  EXPECT_EQ(hidden.pad_overhead_bytes, 0u);
  EXPECT_DOUBLE_EQ(hidden.jitter_mean_delay_s, 0.0);
}

TEST(AnalysisSweep, TimingJitterSmearsTheBitrateTrajectoryAtADelayCost) {
  // The sigma has to be commensurate with the adversary's 250 ms
  // trajectory window: 2 ms never moves a packet across a bin edge on
  // this workload, 20 ms does.
  const LeakageCellResult plain =
      run_cell(policy_of("none"), policy::ShapingPolicy{});
  policy::ShapingPolicy jitter;
  jitter.jitter_stddev_s = 20e-3;
  const LeakageCellResult jittered = run_cell(policy_of("none"), jitter);

  EXPECT_GT(jittered.metrics.trajectory_mae_kbps,
            plain.metrics.trajectory_mae_kbps);
  // The cost side: the half-normal mean delay is added to every packet.
  EXPECT_GT(jittered.jitter_mean_delay_s, 0.0);
  EXPECT_GT(jittered.mean_delay_ms, plain.mean_delay_ms);
  EXPECT_GE(jittered.duration_s, plain.duration_s);
}

// ---- Grid mechanics.

TEST(AnalysisSweep, DefaultAxesAreHeadlinePoliciesByNonePlusKnobs) {
  const LeakageSpec spec;
  EXPECT_EQ(spec.policy_axis().size(), 4u);
  EXPECT_EQ(spec.shaping_axis().size(), 4u);
  EXPECT_EQ(spec.cell_count(), 16u);
  EXPECT_FALSE(spec.shaping_axis()[0].enabled());
  const std::vector<LeakageCell> cells = enumerate_leakage_cells(spec);
  ASSERT_EQ(cells.size(), 16u);
  EXPECT_EQ(cells[0].index, 0u);
  EXPECT_EQ(cells[5].policy.spec(), cells[4].policy.spec());
  EXPECT_NE(cells[5].seed, cells[4].seed);
}

TEST(AnalysisSweep, ValidateRejectsBadSpecs) {
  LeakageSpec bad_gop;
  bad_gop.gop_size = 1;
  EXPECT_THROW(bad_gop.validate(), std::invalid_argument);

  LeakageSpec short_clip;
  short_clip.frames = 8;
  short_clip.gop_size = 16;
  EXPECT_THROW(short_clip.validate(), std::invalid_argument);

  LeakageSpec bad_separation;
  bad_separation.adversary.cluster_separation = 0.5;
  EXPECT_THROW(bad_separation.validate(), std::invalid_argument);

  LeakageSpec bad_shaping;
  bad_shaping.shapings.emplace_back();
  bad_shaping.shapings.back().pad_bucket_bytes = 1;
  EXPECT_THROW(bad_shaping.validate(), std::invalid_argument);
}

TEST(AnalysisSweep, RunnerOutputIsByteIdenticalAtAnyThreadCount) {
  LeakageSpec spec;
  spec.frames = 32;
  spec.gop_size = 8;

  std::ostringstream serial_out;
  LeakageJsonlSink serial_sink{serial_out};
  LeakageRunner serial{nullptr};
  const LeakageSummary s1 = serial.run(spec, serial_sink);

  util::ThreadPool pool{4};
  std::ostringstream pooled_out;
  LeakageJsonlSink pooled_sink{pooled_out};
  LeakageRunner pooled{&pool};
  const LeakageSummary s4 = pooled.run(spec, pooled_sink);

  EXPECT_EQ(s1.cells, s4.cells);
  EXPECT_EQ(s4.threads, 4u);
  EXPECT_EQ(serial_out.str(), pooled_out.str());
  EXPECT_FALSE(serial_out.str().empty());
}

TEST(AnalysisSweep, TeeSinkFansOutToEveryFormat) {
  LeakageSpec spec;
  spec.policies = {policy_of("I")};
  spec.shapings = {policy::ShapingPolicy{}};

  std::ostringstream table_out, jsonl_out, csv_out;
  LeakageTableSink table{table_out};
  LeakageJsonlSink jsonl{jsonl_out};
  LeakageCsvSink csv{csv_out};
  LeakageCollectSink collect;
  LeakageTeeSink tee;
  tee.add(&table);
  tee.add(&jsonl);
  tee.add(&csv);
  tee.add(&collect);

  LeakageRunner runner{nullptr};
  runner.run(spec, tee);
  ASSERT_EQ(collect.results.size(), 1u);
  EXPECT_NE(table_out.str().find("policy"), std::string::npos);
  EXPECT_NE(jsonl_out.str().find("\"policy\":\"I\""), std::string::npos);
  EXPECT_NE(csv_out.str().find("i_precision"), std::string::npos);
  // CSV: header + one row.
  std::size_t lines = 0;
  for (const char c : csv_out.str()) lines += c == '\n' ? 1 : 0;
  EXPECT_EQ(lines, 2u);
}

}  // namespace
}  // namespace tv::analysis
