#include "video/frame.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace tv::video {
namespace {

TEST(Frame, ConstructionAndPlaneSizes) {
  Frame f(352, 288);
  EXPECT_EQ(f.width(), 352);
  EXPECT_EQ(f.height(), 288);
  EXPECT_EQ(f.chroma_width(), 176);
  EXPECT_EQ(f.chroma_height(), 144);
  EXPECT_EQ(f.y_plane().size(), 352u * 288u);
  EXPECT_EQ(f.u_plane().size(), 176u * 144u);
}

TEST(Frame, RejectsBadDimensions) {
  EXPECT_THROW(Frame(0, 16), std::invalid_argument);
  EXPECT_THROW(Frame(17, 16), std::invalid_argument);
  EXPECT_THROW(Frame(32, 24), std::invalid_argument);
}

TEST(Frame, FillAndPixelAccess) {
  Frame f(32, 32);
  f.fill(10, 20, 30);
  EXPECT_EQ(f.y(5, 7), 10);
  EXPECT_EQ(f.u(3, 3), 20);
  EXPECT_EQ(f.v(0, 15), 30);
  f.y(5, 7) = 200;
  EXPECT_EQ(f.y(5, 7), 200);
}

TEST(LumaMse, ZeroForIdenticalFrames) {
  Frame a(32, 32);
  a.fill(100, 128, 128);
  EXPECT_DOUBLE_EQ(luma_mse(a, a), 0.0);
}

TEST(LumaMse, ConstantOffsetSquared) {
  Frame a(32, 32);
  Frame b(32, 32);
  a.fill(100, 128, 128);
  b.fill(110, 0, 255);  // chroma must not matter for luma MSE.
  EXPECT_DOUBLE_EQ(luma_mse(a, b), 100.0);
}

TEST(LumaMse, RejectsDimensionMismatch) {
  Frame a(32, 32);
  Frame b(64, 32);
  EXPECT_THROW((void)luma_mse(a, b), std::invalid_argument);
}

TEST(Psnr, Equation28Values) {
  // PSNR = 20 log10(255 / sqrt(MSE)).
  EXPECT_NEAR(psnr_from_mse(1.0), 48.1308, 1e-3);
  EXPECT_NEAR(psnr_from_mse(100.0), 28.1308, 1e-3);
  EXPECT_TRUE(std::isinf(psnr_from_mse(0.0)));
}

TEST(Psnr, RoundtripWithMse) {
  for (double mse : {0.5, 3.0, 42.0, 2000.0}) {
    EXPECT_NEAR(mse_from_psnr(psnr_from_mse(mse)), mse, 1e-9);
  }
}

TEST(SequencePsnr, AveragesMseFirst) {
  Frame a(32, 32);
  Frame b0(32, 32);
  Frame b1(32, 32);
  a.fill(100, 128, 128);
  b0.fill(100, 128, 128);  // MSE 0.
  b1.fill(120, 128, 128);  // MSE 400.
  const double psnr = sequence_psnr({a, a}, {b0, b1});
  EXPECT_NEAR(psnr, psnr_from_mse(200.0), 1e-9);
}

TEST(AsciiThumbnail, ShapeAndBrightnessOrdering) {
  Frame dark(32, 32);
  dark.fill(0, 128, 128);
  Frame bright(32, 32);
  bright.fill(255, 128, 128);
  const auto d = ascii_thumbnail(dark, 10, 4);
  const auto b = ascii_thumbnail(bright, 10, 4);
  ASSERT_EQ(d.size(), 4u);
  ASSERT_EQ(d[0].size(), 10u);
  EXPECT_EQ(d[0][0], ' ');
  EXPECT_EQ(b[0][0], '@');
}

}  // namespace
}  // namespace tv::video
