#include "queueing/mmpp_g1.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "queueing/mg1.hpp"
#include "queueing/queue_sim.hpp"

namespace tv::queueing {
namespace {

ServiceTimeModel mixture_service() {
  return ServiceTimeModel{
      {{0.3, 4e-3, 4e-4}, {0.7, 2e-3, 2e-4}},
      BackoffModel{0.9, 2000.0}};
}

TEST(MmppG1, PoissonDegenerateMatchesPollaczekKhinchine) {
  // Identical rates in both states make the MMPP a Poisson process,
  // whatever the modulating chain does; the solver must then agree with
  // the P-K formula to near machine precision.
  const Mmpp2 m{.r12 = 3.0, .r21 = 5.0, .lambda1 = 100.0, .lambda2 = 100.0};
  const auto svc = mixture_service();
  const auto sol = MmppG1Solver{m, svc}.solve();
  const auto pk =
      solve_mg1(100.0, svc.mean(), svc.moment2(), svc.moment3());
  EXPECT_NEAR(sol.utilization, pk.utilization, 1e-12);
  EXPECT_NEAR(sol.mean_wait, pk.mean_wait, 1e-9 * pk.mean_wait);
  EXPECT_NEAR(sol.wait_moment2, pk.wait_moment2, 1e-8 * pk.wait_moment2);
  EXPECT_NEAR(sol.mean_workload, pk.mean_wait, 1e-9 * pk.mean_wait);
}

TEST(MmppG1, PoissonDegenerateForAnyModulation) {
  const auto svc = mixture_service();
  for (double r12 : {0.1, 1.0, 50.0}) {
    const Mmpp2 m{.r12 = r12, .r21 = 2.0 * r12, .lambda1 = 80.0,
                  .lambda2 = 80.0};
    const auto sol = MmppG1Solver{m, svc}.solve();
    const auto pk = solve_mg1(80.0, svc.mean(), svc.moment2(), svc.moment3());
    EXPECT_NEAR(sol.mean_wait, pk.mean_wait, 1e-8 * pk.mean_wait)
        << "r12 = " << r12;
  }
}

class MmppG1VsSim : public ::testing::TestWithParam<double> {};

TEST_P(MmppG1VsSim, SolverMatchesDiscreteEventSimulation) {
  const double scale = GetParam();
  const Mmpp2 m{.r12 = 50.0, .r21 = 5.0, .lambda1 = 2000.0 * scale,
                .lambda2 = 60.0 * scale};
  ServiceTimeModel svc{
      {{0.2, 1.5e-3, 1.5e-4}, {0.8, 0.7e-3, 0.7e-4}},
      BackoffModel{0.85, 3000.0}};
  const auto sol = MmppG1Solver{m, svc}.solve();
  const auto sim = simulate_queue(m, svc, 1500000, 100000, 4242);
  // Waits are heavily autocorrelated, so allow a few percent.
  EXPECT_NEAR(sol.mean_wait, sim.wait.mean(), 0.06 * sim.wait.mean());
}

INSTANTIATE_TEST_SUITE_P(Loads, MmppG1VsSim,
                         ::testing::Values(0.5, 1.0, 1.7, 2.4));

TEST(MmppG1, BurstinessCostsMoreThanPoisson) {
  // Same mean arrival rate and service: a bursty MMPP must wait longer
  // than the Poisson equivalent (M/G/1).
  const Mmpp2 bursty{.r12 = 50.0, .r21 = 2.0, .lambda1 = 3000.0,
                     .lambda2 = 20.0};
  const auto svc = mixture_service();
  const auto sol = MmppG1Solver{bursty, svc}.solve();
  const auto pk = solve_mg1(bursty.mean_rate(), svc.mean(), svc.moment2(),
                            svc.moment3());
  EXPECT_GT(sol.mean_wait, 2.0 * pk.mean_wait);
}

TEST(MmppG1, BusyPeriodMatrixIsStochastic) {
  const Mmpp2 m{.r12 = 30.0, .r21 = 3.0, .lambda1 = 2500.0, .lambda2 = 100.0};
  ServiceTimeModel svc{
      {{0.25, 2.2e-3, 2e-4}, {0.75, 1.1e-3, 1e-4}},
      BackoffModel{0.8, 2500.0}};
  const auto sol = MmppG1Solver{m, svc}.solve();
  for (std::size_t i = 0; i < 2; ++i) {
    double row = 0.0;
    for (std::size_t j = 0; j < 2; ++j) {
      EXPECT_GE(sol.busy_period_phase(i, j), 0.0);
      row += sol.busy_period_phase(i, j);
    }
    EXPECT_NEAR(row, 1.0, 1e-9);
  }
}

TEST(MmppG1, IdleProbabilitySumsToOneMinusRho) {
  const Mmpp2 m{.r12 = 30.0, .r21 = 3.0, .lambda1 = 2500.0, .lambda2 = 100.0};
  ServiceTimeModel svc{
      {{0.25, 2.2e-3, 2e-4}, {0.75, 1.1e-3, 1e-4}},
      BackoffModel{0.8, 2500.0}};
  const auto sol = MmppG1Solver{m, svc}.solve();
  double total = 0.0;
  for (double u : sol.idle_phase) {
    EXPECT_GE(u, 0.0);
    total += u;
  }
  EXPECT_NEAR(total, 1.0 - sol.utilization, 1e-9);
}

TEST(MmppG1, WaitVarianceIsNonNegativeAndSimConsistent) {
  const Mmpp2 m{.r12 = 50.0, .r21 = 5.0, .lambda1 = 2000.0, .lambda2 = 60.0};
  ServiceTimeModel svc{
      {{0.2, 1.5e-3, 1.5e-4}, {0.8, 0.7e-3, 0.7e-4}},
      BackoffModel{0.85, 3000.0}};
  const auto sol = MmppG1Solver{m, svc}.solve();
  EXPECT_GE(sol.wait_stddev(), 0.0);
  const auto sim = simulate_queue(m, svc, 1000000, 100000, 17);
  const double sim_m2 =
      sim.wait.mean() * sim.wait.mean() + sim.wait.variance();
  EXPECT_NEAR(sol.wait_moment2, sim_m2, 0.12 * sim_m2);
}

TEST(MmppG1, ThrowsOnUnstableQueue) {
  const Mmpp2 m{.r12 = 1.0, .r21 = 1.0, .lambda1 = 1000.0, .lambda2 = 1000.0};
  ServiceTimeModel svc{{{1.0, 2e-3, 1e-4}},
                       BackoffModel{1.0, 1.0}};  // rho = 2.
  EXPECT_THROW(MmppG1Solver(m, svc).solve(), std::domain_error);
}

TEST(MmppG1, SojournIsWaitPlusService) {
  const Mmpp2 m{.r12 = 10.0, .r21 = 2.0, .lambda1 = 500.0, .lambda2 = 50.0};
  const auto svc = mixture_service();
  const auto sol = MmppG1Solver{m, svc}.solve();
  EXPECT_NEAR(sol.mean_sojourn, sol.mean_wait + svc.mean(), 1e-12);
}

TEST(MmppG1, ThreeStateSolverMatchesSimulation) {
  // Extension beyond the paper's 2-state model: an I / P / B-like
  // three-phase arrival process.
  MmppN m;
  m.q = util::Matrix{{-200.0, 150.0, 50.0},
                     {2.0, -5.0, 3.0},
                     {10.0, 30.0, -40.0}};
  m.rates = {3000.0, 40.0, 400.0};
  ServiceTimeModel svc{
      {{0.3, 1.8e-3, 1.5e-4}, {0.7, 0.8e-3, 0.7e-4}},
      BackoffModel{0.85, 2000.0}};
  const auto sol = MmppG1Solver{m, svc}.solve();
  EXPECT_GT(sol.utilization, 0.0);
  EXPECT_LT(sol.utilization, 1.0);
  const auto sim = simulate_queue(m, svc, 1500000, 100000, 777);
  EXPECT_NEAR(sol.mean_wait, sim.wait.mean(), 0.06 * sim.wait.mean());
  // Idle probabilities still sum to 1 - rho in the general case.
  double total = 0.0;
  for (double u : sol.idle_phase) total += u;
  EXPECT_NEAR(total, 1.0 - sol.utilization, 1e-9);
}

TEST(MmppG1, ThreeStatePoissonDegenerateStillPollaczekKhinchine) {
  MmppN m;
  m.q = util::Matrix{{-3.0, 2.0, 1.0}, {4.0, -9.0, 5.0}, {0.5, 0.5, -1.0}};
  m.rates = {120.0, 120.0, 120.0};
  const auto svc = mixture_service();
  const auto sol = MmppG1Solver{m, svc}.solve();
  const auto pk = solve_mg1(120.0, svc.mean(), svc.moment2(), svc.moment3());
  EXPECT_NEAR(sol.mean_wait, pk.mean_wait, 1e-7 * pk.mean_wait);
}

TEST(MmppN, ValidationCatchesBadGenerators) {
  MmppN m;
  m.q = util::Matrix{{-1.0, 2.0}, {1.0, -1.0}};  // rows don't sum to 0.
  m.rates = {1.0, 1.0};
  EXPECT_THROW(m.validate(), std::invalid_argument);
  m.q = util::Matrix{{-1.0, 1.0}, {1.0, -1.0}};
  m.rates = {0.0, 0.0};
  EXPECT_THROW(m.validate(), std::invalid_argument);
  m.rates = {1.0, 1.0};
  EXPECT_NO_THROW(m.validate());
}

TEST(Mg1, ClosedFormsAndValidation) {
  const auto s = solve_mg1(10.0, 0.05, 0.005, 0.0001);
  EXPECT_NEAR(s.utilization, 0.5, 1e-12);
  EXPECT_NEAR(s.mean_wait, 10.0 * 0.005 / (2.0 * 0.5), 1e-12);
  EXPECT_THROW((void)solve_mg1(10.0, 0.2, 0.05), std::domain_error);
  EXPECT_THROW((void)solve_mg1(-1.0, 0.2, 0.05), std::invalid_argument);
}

}  // namespace
}  // namespace tv::queueing
