#include <gtest/gtest.h>

#include "energy/energy_model.hpp"
#include "energy/monsoon.hpp"

namespace tv::energy {
namespace {

TEST(EnergyModel, ComponentsAddUp) {
  PowerCoefficients c{.base_w = 1.0, .crypto_j_per_mb = 20.0,
                      .radio_tx_w = 0.5, .crypto_max_w = 100.0};
  const EnergyBreakdown e = transfer_energy(c, 10.0, 2'000'000, 2.0);
  EXPECT_DOUBLE_EQ(e.base_j, 10.0);
  EXPECT_DOUBLE_EQ(e.crypto_j, 40.0);
  EXPECT_DOUBLE_EQ(e.radio_j, 1.0);
  EXPECT_DOUBLE_EQ(e.total_j(), 51.0);
  EXPECT_DOUBLE_EQ(mean_power_w(e, 10.0), 5.1);
}

TEST(EnergyModel, NoEncryptionCostsOnlyBaseAndRadio) {
  PowerCoefficients c{.base_w = 1.2, .crypto_j_per_mb = 38.0,
                      .radio_tx_w = 0.7, .crypto_max_w = 1.5};
  const EnergyBreakdown e = transfer_energy(c, 5.0, 0, 1.0);
  EXPECT_DOUBLE_EQ(e.crypto_j, 0.0);
  EXPECT_DOUBLE_EQ(e.total_j(), 1.2 * 5.0 + 0.7);
}

TEST(EnergyModel, CryptoPowerSaturatesAtCpuCeiling) {
  PowerCoefficients c{.base_w = 1.0, .crypto_j_per_mb = 100.0,
                      .radio_tx_w = 0.0, .crypto_max_w = 1.5};
  // 10 MB in 2 s would nominally draw 500 W of crypto: capped at 1.5 W.
  const EnergyBreakdown e = transfer_energy(c, 2.0, 10'000'000, 0.0);
  EXPECT_DOUBLE_EQ(e.crypto_j, 3.0);
  EXPECT_DOUBLE_EQ(mean_power_w(e, 2.0), 2.5);
}

TEST(EnergyModel, MorePolicyBytesNeverCostsLess) {
  PowerCoefficients c{.base_w = 1.0, .crypto_j_per_mb = 20.0,
                      .radio_tx_w = 0.6, .crypto_max_w = 1.45};
  double prev = -1.0;
  for (std::size_t bytes : {0u, 100'000u, 400'000u, 1'000'000u, 4'000'000u}) {
    const double p =
        mean_power_w(transfer_energy(c, 10.0, bytes, 1.5), 10.0);
    EXPECT_GE(p, prev);
    prev = p;
  }
}

TEST(EnergyModel, ValidatesDurations) {
  PowerCoefficients c;
  EXPECT_THROW((void)transfer_energy(c, 0.0, 0, 0.0), std::invalid_argument);
  EXPECT_THROW((void)transfer_energy(c, 1.0, 0, 2.0), std::invalid_argument);
  EXPECT_THROW((void)mean_power_w(EnergyBreakdown{}, 0.0), std::invalid_argument);
}

TEST(Monsoon, Equation29Conversion) {
  // P = v * Voltage * 3600e-6 / duration.
  EXPECT_NEAR(watts_from_microamp_hours(1000.0, 10.0), 1.404, 1e-9);
  // Round trip.
  for (double watts : {0.5, 1.28, 2.4}) {
    const double uah = microamp_hours_from_watts(watts, 33.0);
    EXPECT_NEAR(watts_from_microamp_hours(uah, 33.0), watts, 1e-12);
  }
}

TEST(Monsoon, PaperScaleSanity) {
  // A 1.48 W transfer lasting 10 s should read about 1054 uAh at 3.9 V.
  EXPECT_NEAR(microamp_hours_from_watts(1.48, 10.0), 1054.1, 0.5);
}

TEST(Monsoon, Validation) {
  EXPECT_THROW((void)watts_from_microamp_hours(10.0, 0.0), std::invalid_argument);
  EXPECT_THROW((void)watts_from_microamp_hours(-1.0, 5.0), std::invalid_argument);
  EXPECT_THROW((void)microamp_hours_from_watts(1.0, 1.0, 0.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace tv::energy
