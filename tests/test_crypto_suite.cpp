#include "crypto/suite.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace tv::crypto {
namespace {

TEST(Suite, NamesRoundtrip) {
  for (auto alg : {Algorithm::kAes128, Algorithm::kAes256,
                   Algorithm::kTripleDes}) {
    EXPECT_EQ(algorithm_from_string(std::string{to_string(alg)}), alg);
  }
  EXPECT_THROW((void)algorithm_from_string("DES5"), std::invalid_argument);
}

TEST(Suite, KeySizesMatchStandards) {
  EXPECT_EQ(key_size(Algorithm::kAes128), 16u);
  EXPECT_EQ(key_size(Algorithm::kAes256), 32u);
  EXPECT_EQ(key_size(Algorithm::kTripleDes), 24u);
}

TEST(Suite, FactoryChecksKeySize) {
  std::vector<std::uint8_t> key(16, 1);
  EXPECT_NE(make_cipher(Algorithm::kAes128, key), nullptr);
  EXPECT_THROW((void)make_cipher(Algorithm::kAes256, key), std::invalid_argument);
}

TEST(Suite, FactoryProducesWorkingCiphers) {
  for (auto alg : {Algorithm::kAes128, Algorithm::kAes256,
                   Algorithm::kTripleDes}) {
    const auto cipher = make_cipher_from_seed(alg, 1234);
    ASSERT_NE(cipher, nullptr);
    std::vector<std::uint8_t> pt(cipher->block_size(), 0x5a);
    std::vector<std::uint8_t> ct(cipher->block_size());
    std::vector<std::uint8_t> back(cipher->block_size());
    cipher->encrypt_block(pt, ct);
    cipher->decrypt_block(ct, back);
    EXPECT_EQ(back, pt);
    EXPECT_NE(ct, pt);
  }
}

TEST(Suite, SeededCiphersAreDeterministicPerSeed) {
  const auto a = make_cipher_from_seed(Algorithm::kAes128, 7);
  const auto b = make_cipher_from_seed(Algorithm::kAes128, 7);
  const auto c = make_cipher_from_seed(Algorithm::kAes128, 8);
  std::vector<std::uint8_t> pt(16, 0x11);
  std::vector<std::uint8_t> ca(16);
  std::vector<std::uint8_t> cb(16);
  std::vector<std::uint8_t> cc(16);
  a->encrypt_block(pt, ca);
  b->encrypt_block(pt, cb);
  c->encrypt_block(pt, cc);
  EXPECT_EQ(ca, cb);
  EXPECT_NE(ca, cc);
}

TEST(Suite, RelativeCostOrderingMatchesLiterature) {
  // AES128 < AES256 < 3DES per [15, 28] and our microbenchmarks.
  EXPECT_LT(relative_cost_per_byte(Algorithm::kAes128),
            relative_cost_per_byte(Algorithm::kAes256));
  EXPECT_LT(relative_cost_per_byte(Algorithm::kAes256),
            relative_cost_per_byte(Algorithm::kTripleDes));
}

}  // namespace
}  // namespace tv::crypto
