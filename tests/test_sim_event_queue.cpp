#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace tv::sim {
namespace {

TEST(EventQueue, RunsEventsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(3.0, [&] { order.push_back(3); });
  q.schedule_at(1.0, [&] { order.push_back(1); });
  q.schedule_at(2.0, [&] { order.push_back(2); });
  EXPECT_EQ(q.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(q.now(), 3.0);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, TiesBreakByScheduleOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) {
    q.schedule_at(1.0, [&order, i] { order.push_back(i); });
  }
  q.run();
  for (int i = 0; i < 8; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EventQueue, HandlersScheduleFurtherEvents) {
  EventQueue q;
  std::vector<double> times;
  // A self-perpetuating chain: each firing schedules the next.
  std::function<void()> tick = [&] {
    times.push_back(q.now());
    if (times.size() < 4) q.schedule_in(0.5, tick);
  };
  q.schedule_at(1.0, tick);
  q.run();
  ASSERT_EQ(times.size(), 4u);
  EXPECT_DOUBLE_EQ(times.back(), 2.5);
}

TEST(EventQueue, CancelSuppressesPendingEvent) {
  EventQueue q;
  int fired = 0;
  const EventId id = q.schedule_at(1.0, [&] { ++fired; });
  q.schedule_at(2.0, [&] { ++fired; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));  // already cancelled.
  EXPECT_EQ(q.run(), 1u);
  EXPECT_EQ(fired, 1);
}

TEST(EventQueue, CancelFromHandlerAndAfterRun) {
  EventQueue q;
  int fired = 0;
  EventId later{};
  later = q.schedule_at(2.0, [&] { ++fired; });
  q.schedule_at(1.0, [&] { EXPECT_TRUE(q.cancel(later)); });
  q.run();
  EXPECT_EQ(fired, 0);
  EXPECT_FALSE(q.cancel(later));  // ran or cancelled events are gone.
}

TEST(EventQueue, RejectsSchedulingInThePast) {
  EventQueue q;
  q.schedule_at(1.0, [] {});
  q.run();
  EXPECT_THROW(q.schedule_at(0.5, [] {}), std::invalid_argument);
  EXPECT_NO_THROW(q.schedule_at(1.0, [] {}));  // "now" is allowed.
}

TEST(EventQueue, MaxEventsBoundsTheRun) {
  EventQueue q;
  int fired = 0;
  for (int i = 0; i < 5; ++i) {
    q.schedule_at(static_cast<double>(i + 1), [&] { ++fired; });
  }
  EXPECT_EQ(q.run(2), 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(q.pending(), 3u);
  EXPECT_EQ(q.run(), 3u);
  EXPECT_EQ(q.processed(), 5u);
}

}  // namespace
}  // namespace tv::sim
