// Full-grid convergence run (the slow validation tier): simulate every cell
// of a 16-point (lambda1, lambda2, policy, cipher) grid at full effort and
// require each simulated statistic to land inside its analytic acceptance
// band.  This is the end-to-end cross-check of eqs. 3-28 described in
// docs/validation.md; the cheap per-component checks live in
// test_sim_validation.cpp.
#include <gtest/gtest.h>

#include "sim/validation.hpp"
#include "util/thread_pool.hpp"

namespace tv::sim {
namespace {

TEST(ValidationGrid, FullGridMatchesAnalyticModel) {
  ValidationSpec spec;
  spec.lambda1s = {2400.0, 4000.0};
  spec.lambda2s = {160.0, 320.0};
  // Both eavesdropper regimes crossed with the fastest and slowest cipher.
  // (policy "all" with 3DES is unstable at these rates, so the policy axis
  // stays on none/I-frames; the worst cell here is I + 3DES at rho ~ 0.7.)
  spec.algorithms = {crypto::Algorithm::kAes256,
                     crypto::Algorithm::kTripleDes};
  spec.seed = 20260807;
  ASSERT_EQ(spec.cell_count(), 16u);

  util::ThreadPool pool;
  ValidationCollectSink sink;
  const ValidationSummary summary =
      ValidationRunner{&pool}.run(spec, sink);

  EXPECT_EQ(summary.cells, 16u);
  ASSERT_EQ(sink.results.size(), 16u);
  for (const ValidationCellResult& result : sink.results) {
    for (const ValidationCheck& check : result.checks) {
      EXPECT_TRUE(check.ok)
          << "cell " << result.cell.index << " (lambda1 "
          << result.cell.lambda1 << ", lambda2 " << result.cell.lambda2
          << "): " << check.name << " simulated " << check.simulated
          << " vs analytic " << check.analytic << " (tolerance "
          << check.tolerance << ")";
    }
  }
  EXPECT_TRUE(summary.all_passed());
}

}  // namespace
}  // namespace tv::sim
