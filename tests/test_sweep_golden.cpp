// Golden-file regression for the sweep engine's JSONL output.
//
// The fixture tests/data/sweep_golden.jsonl pins the byte-exact output of a
// small but representative sweep.  Because JsonlSink prints every statistic
// at %.17g and the sweep's determinism contract makes results independent
// of thread count, any byte difference is a real behaviour change — a
// statistics change, a seed-derivation change, or a serialization change —
// and must be reviewed, not absorbed.  After an intentional change,
// regenerate with
//
//     TV_UPDATE_GOLDEN=1 ./build/tests/tv_validation_tests
//         --gtest_filter='SweepGolden.*'   (one command line)
//
// and inspect the fixture diff.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "core/sweep.hpp"

#ifndef TV_TEST_DATA_DIR
#error "TV_TEST_DATA_DIR must point at tests/data"
#endif

namespace tv::core {
namespace {

// The pinned grid: both motion levels, two policies x two ciphers, one
// lossy channel cell, quality evaluation on.  Do not edit casually — the
// fixture encodes these exact axes.
SweepSpec golden_spec() {
  SweepSpec spec;
  spec.motions = {video::MotionLevel::kLow, video::MotionLevel::kHigh};
  spec.gop_sizes = {30};
  spec.policies = {{policy::Mode::kNone, crypto::Algorithm::kAes256, 0.0},
                   {policy::Mode::kIFrames, crypto::Algorithm::kAes256, 0.0}};
  spec.algorithms = {crypto::Algorithm::kAes128,
                     crypto::Algorithm::kTripleDes};
  spec.frames = 60;
  spec.repetitions = 3;
  spec.seed = 97;
  return spec;
}

std::string run_golden_sweep() {
  std::ostringstream out;
  JsonlSink sink{out};
  SweepRunner runner;
  (void)runner.run(golden_spec(), sink);
  return out.str();
}

TEST(SweepGolden, JsonlOutputMatchesFixture) {
  const std::string path = std::string{TV_TEST_DATA_DIR} +
                           "/sweep_golden.jsonl";
  const std::string actual = run_golden_sweep();
  ASSERT_FALSE(actual.empty());

  if (std::getenv("TV_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out{path, std::ios::binary};
    ASSERT_TRUE(out) << "cannot write " << path;
    out << actual;
    GTEST_SKIP() << "fixture regenerated at " << path;
  }

  std::ifstream in{path, std::ios::binary};
  ASSERT_TRUE(in) << "missing fixture " << path
                  << "; regenerate with TV_UPDATE_GOLDEN=1";
  std::ostringstream expected;
  expected << in.rdbuf();
  if (actual == expected.str()) return;

  // Narrow the report to the first diverging line.
  std::istringstream a{actual}, e{expected.str()};
  std::string al, el;
  int line = 1;
  while (std::getline(a, al) && std::getline(e, el) && al == el) ++line;
  FAIL() << "sweep JSONL diverged from " << path << " at line " << line
         << "\n  expected: " << el << "\n  actual:   " << al
         << "\nIf the change is intentional, regenerate the fixture with "
            "TV_UPDATE_GOLDEN=1 and review the diff.";
}

}  // namespace
}  // namespace tv::core
