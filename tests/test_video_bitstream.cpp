#include "video/bitstream.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <vector>

namespace tv::video {
namespace {

TEST(ByteWriter, FixedWidthLittleEndian) {
  ByteWriter w;
  w.put_u8(0xab);
  w.put_u16(0x1234);
  w.put_u32(0xdeadbeef);
  const auto& b = w.bytes();
  ASSERT_EQ(b.size(), 7u);
  EXPECT_EQ(b[0], 0xab);
  EXPECT_EQ(b[1], 0x34);
  EXPECT_EQ(b[2], 0x12);
  EXPECT_EQ(b[3], 0xef);
  EXPECT_EQ(b[6], 0xde);
}

TEST(ByteReader, FixedWidthRoundtrip) {
  ByteWriter w;
  w.put_u8(7);
  w.put_u16(65535);
  w.put_u32(123456789);
  const auto bytes = w.bytes();
  ByteReader r{bytes};
  EXPECT_EQ(r.get_u8(), 7);
  EXPECT_EQ(r.get_u16(), 65535);
  EXPECT_EQ(r.get_u32(), 123456789u);
  EXPECT_TRUE(r.exhausted());
}

class VarintRoundtrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(VarintRoundtrip, UnsignedRoundtrips) {
  ByteWriter w;
  w.put_varint(GetParam());
  const auto bytes = w.bytes();
  ByteReader r{bytes};
  EXPECT_EQ(r.get_varint(), GetParam());
  EXPECT_TRUE(r.exhausted());
}

INSTANTIATE_TEST_SUITE_P(
    Values, VarintRoundtrip,
    ::testing::Values(0ull, 1ull, 127ull, 128ull, 300ull, 16383ull, 16384ull,
                      (1ull << 32), (1ull << 56) + 12345ull,
                      std::numeric_limits<std::uint64_t>::max()));

class SignedRoundtrip : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(SignedRoundtrip, SignedRoundtrips) {
  ByteWriter w;
  w.put_signed(GetParam());
  const auto bytes = w.bytes();
  ByteReader r{bytes};
  EXPECT_EQ(r.get_signed(), GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    Values, SignedRoundtrip,
    ::testing::Values(0ll, 1ll, -1ll, 63ll, -64ll, 64ll, -65ll, 4096ll,
                      -4096ll, std::numeric_limits<std::int64_t>::max(),
                      std::numeric_limits<std::int64_t>::min()));

TEST(Varint, SmallValuesAreOneByte) {
  for (std::uint64_t v : {0ull, 1ull, 127ull}) {
    ByteWriter w;
    w.put_varint(v);
    EXPECT_EQ(w.size(), 1u);
  }
  ByteWriter w;
  w.put_varint(128);
  EXPECT_EQ(w.size(), 2u);
}

TEST(ByteReader, ThrowsOnTruncation) {
  const std::vector<std::uint8_t> empty;
  ByteReader r1{empty};
  EXPECT_THROW((void)r1.get_u8(), BitstreamError);

  const std::vector<std::uint8_t> one = {0x12};
  ByteReader r2{one};
  EXPECT_THROW((void)r2.get_u16(), BitstreamError);

  // Unterminated varint: continuation bit set, then end of data.
  const std::vector<std::uint8_t> dangling = {0x80};
  ByteReader r3{dangling};
  EXPECT_THROW((void)r3.get_varint(), BitstreamError);
}

TEST(ByteReader, ThrowsOnOverlongVarint) {
  // Eleven continuation bytes exceed 64 bits.
  const std::vector<std::uint8_t> overlong(11, 0x80);
  ByteReader r{overlong};
  EXPECT_THROW((void)r.get_varint(), BitstreamError);
}

TEST(ByteReader, PositionTracking) {
  ByteWriter w;
  w.put_u32(1);
  w.put_u8(2);
  const auto bytes = w.bytes();
  ByteReader r{bytes};
  EXPECT_EQ(r.remaining(), 5u);
  (void)r.get_u32();
  EXPECT_EQ(r.position(), 4u);
  EXPECT_EQ(r.remaining(), 1u);
}

}  // namespace
}  // namespace tv::video
