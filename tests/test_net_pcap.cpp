#include "net/pcap.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "net/rtp.hpp"
#include "util/arena.hpp"

namespace tv::net {
namespace {

util::Arena& test_arena() {
  static util::Arena arena;  // lives for the whole test binary.
  return arena;
}

VideoPacket make_packet(std::uint16_t seq, bool encrypted,
                        std::size_t payload = 100) {
  VideoPacket p;
  p.sequence = seq;
  p.timestamp = 90000u * seq;
  p.encrypted = encrypted;
  p.allocate_payload(test_arena(), payload, static_cast<std::uint8_t>(seq));
  return p;
}

TEST(Pcap, WireFrameLayout) {
  const VideoPacket p = make_packet(7, true, 64);
  const auto frame = wire_frame(p, CaptureEndpoints{});
  ASSERT_EQ(frame.size(), 14u + 20u + 8u + 12u + 64u);
  // Ethertype IPv4 at offset 12.
  EXPECT_EQ(frame[12], 0x08);
  EXPECT_EQ(frame[13], 0x00);
  // IPv4 version/IHL and protocol UDP.
  EXPECT_EQ(frame[14], 0x45);
  EXPECT_EQ(frame[14 + 9], 17);
  // UDP length covers UDP header + RTP + payload.
  const std::uint16_t udp_len = static_cast<std::uint16_t>(
      (frame[14 + 20 + 4] << 8) | frame[14 + 20 + 5]);
  EXPECT_EQ(udp_len, 8u + 12u + 64u);
  // The embedded RTP header parses back with the marker (encryption) bit.
  const auto rtp = RtpHeader::parse(
      std::span<const std::uint8_t>(frame).subspan(14 + 20 + 8, 12));
  EXPECT_TRUE(rtp.marker);
  EXPECT_EQ(rtp.sequence_number, 7);
}

TEST(Pcap, Ipv4HeaderChecksumValidates) {
  const VideoPacket p = make_packet(3, false);
  const auto frame = wire_frame(p, CaptureEndpoints{});
  // RFC 1071: summing the header including its checksum gives 0xffff.
  std::uint32_t sum = 0;
  for (std::size_t i = 14; i < 34; i += 2) {
    sum += static_cast<std::uint32_t>(frame[i]) << 8 | frame[i + 1];
  }
  while (sum >> 16) sum = (sum & 0xffff) + (sum >> 16);
  EXPECT_EQ(sum, 0xffffu);
}

TEST(Pcap, GlobalHeaderAndRecords) {
  std::vector<VideoPacket> packets = {make_packet(0, false, 10),
                                      make_packet(1, true, 20)};
  std::vector<CapturedPacket> caps = {{1.5, &packets[0]},
                                      {1.5078125, &packets[1]}};
  std::ostringstream out;
  write_pcap(out, caps);
  const std::string s = out.str();
  ASSERT_GE(s.size(), 24u);
  // Little-endian classic pcap magic.
  EXPECT_EQ(static_cast<std::uint8_t>(s[0]), 0xd4);
  EXPECT_EQ(static_cast<std::uint8_t>(s[1]), 0xc3);
  EXPECT_EQ(static_cast<std::uint8_t>(s[2]), 0xb2);
  EXPECT_EQ(static_cast<std::uint8_t>(s[3]), 0xa1);
  // LINKTYPE_ETHERNET = 1 at offset 20.
  EXPECT_EQ(static_cast<std::uint8_t>(s[20]), 1);
  // First record: ts_sec = 1, ts_usec = 500000.
  EXPECT_EQ(static_cast<std::uint8_t>(s[24]), 1);
  const std::uint32_t usec = static_cast<std::uint8_t>(s[28]) |
                             (static_cast<std::uint8_t>(s[29]) << 8) |
                             (static_cast<std::uint8_t>(s[30]) << 16) |
                             (static_cast<std::uint8_t>(s[31]) << 24);
  EXPECT_EQ(usec, 500000u);
  // Total size: global header + 2 * (record header + frame).
  const std::size_t f0 = 14 + 20 + 8 + 12 + 10;
  const std::size_t f1 = 14 + 20 + 8 + 12 + 20;
  EXPECT_EQ(s.size(), 24u + 16u + f0 + 16u + f1);
}

TEST(Pcap, CaptureOfFiltersByFlag) {
  std::vector<VideoPacket> packets = {make_packet(0, false),
                                      make_packet(1, false),
                                      make_packet(2, false)};
  const std::vector<bool> captured = {true, false, true};
  const std::vector<double> times = {0.1, 0.2, 0.3};
  const auto caps = capture_of(packets, captured, times);
  ASSERT_EQ(caps.size(), 2u);
  EXPECT_EQ(caps[0].packet, &packets[0]);
  EXPECT_DOUBLE_EQ(caps[1].timestamp_s, 0.3);
  EXPECT_THROW((void)capture_of(packets, {true}, times), std::invalid_argument);
}

TEST(Pcap, ValidatesNullPackets) {
  std::ostringstream out;
  EXPECT_THROW(write_pcap(out, {{0.0, nullptr}}), std::invalid_argument);
}

TEST(Pcap, EmptyCaptureYieldsHeaderOnlyFile) {
  std::ostringstream out;
  EXPECT_EQ(write_pcap(out, {}), 0u);
  const std::string s = out.str();
  ASSERT_EQ(s.size(), 24u);  // global header only: a valid empty capture.
  EXPECT_EQ(static_cast<std::uint8_t>(s[0]), 0xd4);
}

TEST(Pcap, ClampsNonMonotonicAndNegativeTimestamps) {
  std::vector<VideoPacket> packets = {make_packet(0, false, 10),
                                      make_packet(1, false, 10),
                                      make_packet(2, false, 10)};
  // Out-of-order capture stamps: 2.0, then 1.0 (backwards), then -0.5 on
  // a fresh capture (negative).
  std::vector<CapturedPacket> caps = {{2.0, &packets[0]},
                                      {1.0, &packets[1]},
                                      {2.5, &packets[2]}};
  std::ostringstream out;
  EXPECT_EQ(write_pcap(out, caps), 1u);  // the 1.0 record was clamped.
  const std::string s = out.str();
  const std::size_t record = 16 + (14 + 20 + 8 + 12 + 10);
  // Second record's ts_sec (clamped from 1.0 up to 2.0).
  const std::size_t off = 24 + record;
  EXPECT_EQ(static_cast<std::uint8_t>(s[off]), 2);

  std::vector<CapturedPacket> negative = {{-0.5, &packets[0]}};
  std::ostringstream out2;
  EXPECT_EQ(write_pcap(out2, negative), 1u);  // clamped up to zero.
  EXPECT_EQ(static_cast<std::uint8_t>(out2.str()[24]), 0);
}

// --- reader: four classic magics, timestamp scaling, clamp-and-warn ------

namespace reader {

void put32(std::string& s, std::uint32_t v, bool big_endian) {
  if (big_endian) {
    s.push_back(static_cast<char>(v >> 24));
    s.push_back(static_cast<char>((v >> 16) & 0xff));
    s.push_back(static_cast<char>((v >> 8) & 0xff));
    s.push_back(static_cast<char>(v & 0xff));
  } else {
    s.push_back(static_cast<char>(v & 0xff));
    s.push_back(static_cast<char>((v >> 8) & 0xff));
    s.push_back(static_cast<char>((v >> 16) & 0xff));
    s.push_back(static_cast<char>(v >> 24));
  }
}

void put16(std::string& s, std::uint16_t v, bool big_endian) {
  if (big_endian) {
    s.push_back(static_cast<char>(v >> 8));
    s.push_back(static_cast<char>(v & 0xff));
  } else {
    s.push_back(static_cast<char>(v & 0xff));
    s.push_back(static_cast<char>(v >> 8));
  }
}

/// Synthesize a one-record capture in any of the four classic formats.
std::string capture(std::uint32_t magic, bool big_endian,
                    std::uint32_t frac, std::uint32_t snaplen,
                    const std::vector<std::uint8_t>& frame,
                    std::uint32_t incl_len_override = 0) {
  std::string s;
  put32(s, magic, big_endian);
  put16(s, 2, big_endian);
  put16(s, 4, big_endian);
  put32(s, 0, big_endian);
  put32(s, 0, big_endian);
  put32(s, snaplen, big_endian);
  put32(s, 1, big_endian);  // LINKTYPE_ETHERNET.
  put32(s, 10, big_endian);  // ts_sec.
  put32(s, frac, big_endian);
  const auto incl = incl_len_override != 0
                        ? incl_len_override
                        : static_cast<std::uint32_t>(frame.size());
  put32(s, incl, big_endian);
  put32(s, static_cast<std::uint32_t>(frame.size()), big_endian);
  s.append(frame.begin(), frame.end());
  return s;
}

}  // namespace reader

TEST(PcapReader, AcceptsAllFourClassicMagics) {
  const std::vector<std::uint8_t> frame(40, 0xAB);
  struct Case {
    std::uint32_t magic;
    bool big_endian;
    bool nanosecond;
  };
  const Case cases[] = {{0xa1b2c3d4, false, false},
                        {0xa1b2c3d4, true, false},
                        {0xa1b23c4d, false, true},
                        {0xa1b23c4d, true, true}};
  for (const Case& c : cases) {
    // usec captures carry 250000 us = 0.25 s; nsec ones 250000000 ns.
    const std::uint32_t frac = c.nanosecond ? 250000000u : 250000u;
    std::istringstream in{
        reader::capture(c.magic, c.big_endian, frac, 65535, frame)};
    const PcapFile file = read_pcap(in);
    EXPECT_EQ(file.big_endian, c.big_endian);
    EXPECT_EQ(file.nanosecond_timestamps, c.nanosecond);
    EXPECT_EQ(file.link_type, 1u);
    EXPECT_EQ(file.snaplen, 65535u);
    ASSERT_EQ(file.records.size(), 1u);
    EXPECT_NEAR(file.records[0].timestamp_s, 10.25, 1e-9);
    EXPECT_EQ(file.records[0].frame, frame);
    EXPECT_EQ(file.oversized_records, 0u);
  }
}

TEST(PcapReader, RejectsUnknownMagicAndTruncation) {
  std::istringstream bad_magic{std::string(24, '\0')};
  EXPECT_THROW((void)read_pcap(bad_magic), std::runtime_error);

  std::istringstream short_header{std::string("\xd4\xc3\xb2\xa1", 4)};
  EXPECT_THROW((void)read_pcap(short_header), std::runtime_error);

  // Record body shorter than its incl_len.
  const std::vector<std::uint8_t> frame(40, 1);
  std::string s = reader::capture(0xa1b2c3d4, false, 0, 65535, frame);
  s.resize(s.size() - 10);
  std::istringstream truncated{s};
  EXPECT_THROW((void)read_pcap(truncated), std::runtime_error);
}

TEST(PcapReader, CountsOversizedRecordsInsteadOfFailing) {
  // A record longer than the declared snaplen is a producer bug; the
  // reader keeps the bytes and counts it (clamp-and-warn).
  const std::vector<std::uint8_t> frame(64, 7);
  std::istringstream in{reader::capture(0xa1b2c3d4, false, 0, 48, frame)};
  const PcapFile file = read_pcap(in);
  ASSERT_EQ(file.records.size(), 1u);
  EXPECT_EQ(file.oversized_records, 1u);
  EXPECT_EQ(file.records[0].frame.size(), 64u);
}

TEST(PcapReader, RejectsImplausibleRecordLength) {
  std::istringstream in{reader::capture(0xa1b2c3d4, false, 0, 65535, {},
                                        /*incl_len_override=*/0x40000000u)};
  EXPECT_THROW((void)read_pcap(in), std::runtime_error);
}

TEST(PcapReader, WriterClampsOversizedFramesToSnapLen) {
  // A raw "datagram" bigger than the snaplen: the writer must clamp
  // incl_len, keep orig_len honest, and count the record.
  std::vector<RawCapture> caps(1);
  caps[0].timestamp_s = 1.0;
  caps[0].datagram.assign(70000, 0x55);
  std::ostringstream out;
  EXPECT_EQ(write_pcap_datagrams(out, caps), 1u);
  std::istringstream in{out.str()};
  const PcapFile file = read_pcap(in);
  ASSERT_EQ(file.records.size(), 1u);
  EXPECT_EQ(file.records[0].frame.size(), kPcapSnapLen);
  EXPECT_EQ(file.records[0].original_length, 70000u + 14u + 20u + 8u);
  EXPECT_EQ(file.oversized_records, 0u);  // incl_len == snaplen is legal.
}

TEST(PcapReader, RoundTripsWriterOutputAndExtractsRtp) {
  std::vector<VideoPacket> packets = {make_packet(0, false, 10),
                                      make_packet(1, true, 20)};
  std::vector<CapturedPacket> caps = {{1.5, &packets[0]},
                                      {1.625, &packets[1]}};
  std::ostringstream out;
  write_pcap(out, caps);
  std::istringstream in{out.str()};
  const PcapFile file = read_pcap(in);
  EXPECT_FALSE(file.big_endian);
  EXPECT_FALSE(file.nanosecond_timestamps);
  ASSERT_EQ(file.records.size(), 2u);
  EXPECT_NEAR(file.records[1].timestamp_s, 1.625, 1e-6);

  const auto rtp = extract_rtp(file);
  ASSERT_EQ(rtp.size(), 2u);
  EXPECT_EQ(rtp[0].header.sequence_number, 0);
  EXPECT_FALSE(rtp[0].header.marker);
  EXPECT_EQ(rtp[0].payload.size(), 10u);
  EXPECT_TRUE(rtp[1].header.marker);
  EXPECT_EQ(rtp[1].payload, packets[1].payload);
}

TEST(PcapReader, ExtractRtpSkipsNonRtpFrames) {
  // An Ethernet frame that is not IPv4/UDP/RTP must be skipped, not
  // mis-parsed.
  PcapFile file;
  PcapRecord junk;
  junk.frame.assign(60, 0xFF);
  file.records.push_back(junk);
  EXPECT_TRUE(extract_rtp(file).empty());
}

TEST(PcapReader, DatagramWriterPreservesRtpAndUsesSequenceAsIpId) {
  RtpHeader h;
  h.marker = true;
  h.sequence_number = 0x0A0B;
  h.ssrc = 0x74561D01;
  std::vector<std::uint8_t> datagram = h.serialize();
  datagram.insert(datagram.end(), {1, 2, 3, 4});
  std::ostringstream out;
  EXPECT_EQ(write_pcap_datagrams(out, {{0.5, datagram}}), 0u);
  std::istringstream in{out.str()};
  const PcapFile file = read_pcap(in);
  ASSERT_EQ(file.records.size(), 1u);
  // IPv4 identification at frame offset 18 echoes the RTP sequence.
  const auto& f = file.records[0].frame;
  EXPECT_EQ((f[18] << 8) | f[19], 0x0A0B);
  const auto rtp = extract_rtp(file);
  ASSERT_EQ(rtp.size(), 1u);
  EXPECT_TRUE(rtp[0].header.marker);
  EXPECT_EQ(rtp[0].payload, (std::vector<std::uint8_t>{1, 2, 3, 4}));
}

}  // namespace
}  // namespace tv::net
