#include "net/pcap.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "net/rtp.hpp"

namespace tv::net {
namespace {

VideoPacket make_packet(std::uint16_t seq, bool encrypted,
                        std::size_t payload = 100) {
  VideoPacket p;
  p.sequence = seq;
  p.timestamp = 90000u * seq;
  p.encrypted = encrypted;
  p.payload.assign(payload, static_cast<std::uint8_t>(seq));
  return p;
}

TEST(Pcap, WireFrameLayout) {
  const VideoPacket p = make_packet(7, true, 64);
  const auto frame = wire_frame(p, CaptureEndpoints{});
  ASSERT_EQ(frame.size(), 14u + 20u + 8u + 12u + 64u);
  // Ethertype IPv4 at offset 12.
  EXPECT_EQ(frame[12], 0x08);
  EXPECT_EQ(frame[13], 0x00);
  // IPv4 version/IHL and protocol UDP.
  EXPECT_EQ(frame[14], 0x45);
  EXPECT_EQ(frame[14 + 9], 17);
  // UDP length covers UDP header + RTP + payload.
  const std::uint16_t udp_len = static_cast<std::uint16_t>(
      (frame[14 + 20 + 4] << 8) | frame[14 + 20 + 5]);
  EXPECT_EQ(udp_len, 8u + 12u + 64u);
  // The embedded RTP header parses back with the marker (encryption) bit.
  const auto rtp = RtpHeader::parse(
      std::span<const std::uint8_t>(frame).subspan(14 + 20 + 8, 12));
  EXPECT_TRUE(rtp.marker);
  EXPECT_EQ(rtp.sequence_number, 7);
}

TEST(Pcap, Ipv4HeaderChecksumValidates) {
  const VideoPacket p = make_packet(3, false);
  const auto frame = wire_frame(p, CaptureEndpoints{});
  // RFC 1071: summing the header including its checksum gives 0xffff.
  std::uint32_t sum = 0;
  for (std::size_t i = 14; i < 34; i += 2) {
    sum += static_cast<std::uint32_t>(frame[i]) << 8 | frame[i + 1];
  }
  while (sum >> 16) sum = (sum & 0xffff) + (sum >> 16);
  EXPECT_EQ(sum, 0xffffu);
}

TEST(Pcap, GlobalHeaderAndRecords) {
  std::vector<VideoPacket> packets = {make_packet(0, false, 10),
                                      make_packet(1, true, 20)};
  std::vector<CapturedPacket> caps = {{1.5, &packets[0]},
                                      {1.5078125, &packets[1]}};
  std::ostringstream out;
  write_pcap(out, caps);
  const std::string s = out.str();
  ASSERT_GE(s.size(), 24u);
  // Little-endian classic pcap magic.
  EXPECT_EQ(static_cast<std::uint8_t>(s[0]), 0xd4);
  EXPECT_EQ(static_cast<std::uint8_t>(s[1]), 0xc3);
  EXPECT_EQ(static_cast<std::uint8_t>(s[2]), 0xb2);
  EXPECT_EQ(static_cast<std::uint8_t>(s[3]), 0xa1);
  // LINKTYPE_ETHERNET = 1 at offset 20.
  EXPECT_EQ(static_cast<std::uint8_t>(s[20]), 1);
  // First record: ts_sec = 1, ts_usec = 500000.
  EXPECT_EQ(static_cast<std::uint8_t>(s[24]), 1);
  const std::uint32_t usec = static_cast<std::uint8_t>(s[28]) |
                             (static_cast<std::uint8_t>(s[29]) << 8) |
                             (static_cast<std::uint8_t>(s[30]) << 16) |
                             (static_cast<std::uint8_t>(s[31]) << 24);
  EXPECT_EQ(usec, 500000u);
  // Total size: global header + 2 * (record header + frame).
  const std::size_t f0 = 14 + 20 + 8 + 12 + 10;
  const std::size_t f1 = 14 + 20 + 8 + 12 + 20;
  EXPECT_EQ(s.size(), 24u + 16u + f0 + 16u + f1);
}

TEST(Pcap, CaptureOfFiltersByFlag) {
  std::vector<VideoPacket> packets = {make_packet(0, false),
                                      make_packet(1, false),
                                      make_packet(2, false)};
  const std::vector<bool> captured = {true, false, true};
  const std::vector<double> times = {0.1, 0.2, 0.3};
  const auto caps = capture_of(packets, captured, times);
  ASSERT_EQ(caps.size(), 2u);
  EXPECT_EQ(caps[0].packet, &packets[0]);
  EXPECT_DOUBLE_EQ(caps[1].timestamp_s, 0.3);
  EXPECT_THROW((void)capture_of(packets, {true}, times), std::invalid_argument);
}

TEST(Pcap, ValidatesNullPackets) {
  std::ostringstream out;
  EXPECT_THROW(write_pcap(out, {{0.0, nullptr}}), std::invalid_argument);
}

TEST(Pcap, EmptyCaptureYieldsHeaderOnlyFile) {
  std::ostringstream out;
  EXPECT_EQ(write_pcap(out, {}), 0u);
  const std::string s = out.str();
  ASSERT_EQ(s.size(), 24u);  // global header only: a valid empty capture.
  EXPECT_EQ(static_cast<std::uint8_t>(s[0]), 0xd4);
}

TEST(Pcap, ClampsNonMonotonicAndNegativeTimestamps) {
  std::vector<VideoPacket> packets = {make_packet(0, false, 10),
                                      make_packet(1, false, 10),
                                      make_packet(2, false, 10)};
  // Out-of-order capture stamps: 2.0, then 1.0 (backwards), then -0.5 on
  // a fresh capture (negative).
  std::vector<CapturedPacket> caps = {{2.0, &packets[0]},
                                      {1.0, &packets[1]},
                                      {2.5, &packets[2]}};
  std::ostringstream out;
  EXPECT_EQ(write_pcap(out, caps), 1u);  // the 1.0 record was clamped.
  const std::string s = out.str();
  const std::size_t record = 16 + (14 + 20 + 8 + 12 + 10);
  // Second record's ts_sec (clamped from 1.0 up to 2.0).
  const std::size_t off = 24 + record;
  EXPECT_EQ(static_cast<std::uint8_t>(s[off]), 2);

  std::vector<CapturedPacket> negative = {{-0.5, &packets[0]}};
  std::ostringstream out2;
  EXPECT_EQ(write_pcap(out2, negative), 1u);  // clamped up to zero.
  EXPECT_EQ(static_cast<std::uint8_t>(out2.str()[24]), 0);
}

}  // namespace
}  // namespace tv::net
