#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <set>

namespace tv::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a{123};
  Rng b{123};
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a{1};
  Rng b{2};
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, ReseedRestartsSequence) {
  Rng a{42};
  const auto first = a();
  a.reseed(42);
  EXPECT_EQ(a(), first);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng{7};
  double sum = 0.0;
  double sum_sq = 0.0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
    sum_sq += u * u;
  }
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
  EXPECT_NEAR(sum_sq / kN - 0.25, 1.0 / 12.0, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng{9};
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-3.0, 5.0);
    ASSERT_GE(x, -3.0);
    ASSERT_LT(x, 5.0);
  }
}

TEST(Rng, UniformIntIsUnbiasedOverSmallRange) {
  Rng rng{11};
  constexpr std::uint64_t kRange = 7;
  std::array<int, kRange> counts{};
  constexpr int kN = 140000;
  for (int i = 0; i < kN; ++i) {
    counts[rng.uniform_int(kRange)]++;
  }
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), kN / 7.0, kN / 7.0 * 0.05);
  }
}

TEST(Rng, ExponentialHasRequestedMean) {
  Rng rng{13};
  double sum = 0.0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / kN, 0.25, 0.005);
}

TEST(Rng, GaussianMomentsMatch) {
  Rng rng{17};
  double sum = 0.0;
  double sum_sq = 0.0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) {
    const double g = rng.gaussian(2.0, 3.0);
    sum += g;
    sum_sq += g * g;
  }
  const double mean = sum / kN;
  const double var = sum_sq / kN - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.05);
  EXPECT_NEAR(var, 9.0, 0.2);
}

TEST(Rng, GeometricFailuresMean) {
  Rng rng{19};
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    sum += static_cast<double>(rng.geometric_failures(0.25));
  }
  // E[K] = (1-p)/p = 3.
  EXPECT_NEAR(sum / kN, 3.0, 0.1);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng{23};
  int hits = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / static_cast<double>(kN), 0.3, 0.01);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent{31};
  Rng child = parent.fork();
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 100; ++i) {
    seen.insert(parent());
    seen.insert(child());
  }
  EXPECT_EQ(seen.size(), 200u);
}

}  // namespace
}  // namespace tv::util
