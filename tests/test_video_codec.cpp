#include "video/codec.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "video/frame.hpp"
#include "video/quality.hpp"
#include "video/scene.hpp"

namespace tv::video {
namespace {

FrameSequence test_clip(MotionLevel level, int frames, std::uint64_t seed) {
  SceneParameters p = SceneParameters::preset(level);
  p.width = 128;  // small frames keep the tests fast.
  p.height = 96;
  return SceneGenerator{p, seed}.render_clip(frames);
}

std::vector<ReceivedFrameData> intact_stream(const EncodedStream& stream) {
  std::vector<ReceivedFrameData> out;
  out.reserve(stream.frames.size());
  for (const auto& f : stream.frames) {
    out.push_back(ReceivedFrameData::intact(f.data));
  }
  return out;
}

TEST(Codec, GopStructureIsIppp) {
  const auto clip = test_clip(MotionLevel::kMedium, 25, 1);
  CodecConfig config;
  config.gop_size = 10;
  const Encoder encoder{config};
  const EncodedStream stream = encoder.encode(clip);
  ASSERT_EQ(stream.frames.size(), 25u);
  for (int i = 0; i < 25; ++i) {
    EXPECT_EQ(stream.frames[static_cast<std::size_t>(i)].is_i, i % 10 == 0)
        << "frame " << i;
    EXPECT_EQ(stream.frames[static_cast<std::size_t>(i)].index, i);
  }
}

TEST(Codec, IFramesAreMuchLargerThanPFramesForLowMotion) {
  const auto clip = test_clip(MotionLevel::kLow, 20, 2);
  const Encoder encoder{CodecConfig{.gop_size = 10}};
  const EncodedStream stream = encoder.encode(clip);
  // On these small 128x96 test frames the objects cover a larger share of
  // the picture than at CIF, so the ratio is smaller than the ~20-80x seen
  // on full-size clips.
  EXPECT_GT(stream.mean_i_bytes(), 5.0 * stream.mean_p_bytes());
}

TEST(Codec, PFrameSizeGrowsWithMotion) {
  const Encoder encoder{CodecConfig{.gop_size = 10}};
  const double p_low =
      encoder.encode(test_clip(MotionLevel::kLow, 20, 3)).mean_p_bytes();
  const double p_high =
      encoder.encode(test_clip(MotionLevel::kHigh, 20, 3)).mean_p_bytes();
  EXPECT_GT(p_high, 2.0 * p_low);
}

TEST(Codec, LosslessTransportDecodesAboveThirtyDb) {
  for (auto level : {MotionLevel::kLow, MotionLevel::kHigh}) {
    const auto clip = test_clip(level, 15, 4);
    CodecConfig config;
    config.gop_size = 5;
    const Encoder encoder{config};
    const EncodedStream stream = encoder.encode(clip);
    const Decoder decoder{config};
    const FrameSequence decoded =
        decoder.decode_stream(128, 96, intact_stream(stream));
    ASSERT_EQ(decoded.size(), clip.size());
    EXPECT_GT(sequence_psnr(clip, decoded), 30.0)
        << "motion " << to_string(level);
  }
}

TEST(Codec, DecoderMatchesEncoderReconstructionExactly) {
  // The decoder must reproduce the encoder's reference frames bit-exactly,
  // otherwise P-frame prediction drifts.  Decode twice: identical output.
  const auto clip = test_clip(MotionLevel::kMedium, 8, 5);
  CodecConfig config;
  config.gop_size = 8;
  const EncodedStream stream = Encoder{config}.encode(clip);
  const Decoder decoder{config};
  const auto a = decoder.decode_stream(128, 96, intact_stream(stream));
  const auto b = decoder.decode_stream(128, 96, intact_stream(stream));
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(luma_mse(a[i], b[i]), 0.0);
  }
}

TEST(Codec, LostFrameIsConcealedByPreviousOutput) {
  const auto clip = test_clip(MotionLevel::kLow, 6, 6);
  CodecConfig config;
  config.gop_size = 6;
  const EncodedStream stream = Encoder{config}.encode(clip);
  auto received = intact_stream(stream);
  received[3] = ReceivedFrameData::lost(stream.frames[3].data.size());
  const Decoder decoder{config};
  const FrameSequence decoded = decoder.decode_stream(128, 96, received);
  // Frame 3 must equal frame 2's output (freeze concealment).
  EXPECT_DOUBLE_EQ(luma_mse(decoded[3], decoded[2]), 0.0);
}

TEST(Codec, LostIFrameDegradesWholeGop) {
  const auto clip = test_clip(MotionLevel::kHigh, 12, 7);
  CodecConfig config;
  config.gop_size = 6;
  const EncodedStream stream = Encoder{config}.encode(clip);
  auto received = intact_stream(stream);
  received[6] = ReceivedFrameData::lost(stream.frames[6].data.size());
  const Decoder decoder{config};
  const auto intact = decoder.decode_stream(128, 96, intact_stream(stream));
  const auto lossy = decoder.decode_stream(128, 96, received);
  double mse_second_gop = 0.0;
  for (int i = 6; i < 12; ++i) {
    mse_second_gop += luma_mse(intact[static_cast<std::size_t>(i)],
                               lossy[static_cast<std::size_t>(i)]);
  }
  EXPECT_GT(mse_second_gop / 6.0, 50.0);
}

TEST(Codec, PartialFrameDecodesAvailableRows) {
  const auto clip = test_clip(MotionLevel::kMedium, 2, 8);
  CodecConfig config;
  config.gop_size = 2;
  const EncodedStream stream = Encoder{config}.encode(clip);
  // Keep only the first 60% of the I-frame's bytes.
  const auto& data = stream.frames[0].data;
  ReceivedFrameData partial = ReceivedFrameData::intact(data);
  for (std::size_t i = data.size() * 3 / 5; i < data.size(); ++i) {
    partial.byte_ok[i] = false;
  }
  const Decoder decoder{config};
  const DecodeResult result = decoder.decode_frame(partial, nullptr);
  EXPECT_TRUE(result.header_ok);
  EXPECT_GT(result.decoded_macroblocks, 0);
  EXPECT_LT(result.decoded_macroblocks, result.total_macroblocks);
}

TEST(Codec, HeaderLossKillsTheFrame) {
  const auto clip = test_clip(MotionLevel::kMedium, 1, 9);
  CodecConfig config;
  const EncodedStream stream = Encoder{config}.encode(clip);
  ReceivedFrameData received = ReceivedFrameData::intact(stream.frames[0].data);
  received.byte_ok[2] = false;  // inside the fixed header.
  const Decoder decoder{config};
  const DecodeResult result = decoder.decode_frame(received, nullptr);
  EXPECT_FALSE(result.header_ok);
  EXPECT_EQ(result.decoded_macroblocks, 0);
}

TEST(Codec, GarbageInputIsRejectedGracefully) {
  std::vector<std::uint8_t> garbage(500, 0xCD);
  const Decoder decoder{CodecConfig{}};
  const DecodeResult result =
      decoder.decode_frame(ReceivedFrameData::intact(garbage), nullptr);
  EXPECT_FALSE(result.header_ok);
}

TEST(Codec, EncodedFrameSizesShrinkWithCoarserQuantizer) {
  const auto clip = test_clip(MotionLevel::kMedium, 10, 10);
  CodecConfig fine;
  fine.gop_size = 10;
  fine.i_qstep = 8.0;
  fine.p_qstep = 10.0;
  CodecConfig coarse = fine;
  coarse.i_qstep = 24.0;
  coarse.p_qstep = 30.0;
  const auto s_fine = Encoder{fine}.encode(clip);
  const auto s_coarse = Encoder{coarse}.encode(clip);
  EXPECT_GT(s_fine.total_bytes(), s_coarse.total_bytes());
}

TEST(Codec, IntraRefreshRecoversWithoutIFrame) {
  // Drop the single I-frame of a high-motion clip entirely; intra-refreshed
  // macroblocks in P-frames must progressively rebuild the picture, which
  // is the mechanism that forces I+a%P policies for fast motion (Fig. 9).
  const auto clip = test_clip(MotionLevel::kHigh, 12, 11);
  CodecConfig config;
  config.gop_size = 12;
  const EncodedStream stream = Encoder{config}.encode(clip);
  auto received = intact_stream(stream);
  received[0] = ReceivedFrameData::lost(stream.frames[0].data.size());
  const Decoder decoder{config};
  const auto decoded = decoder.decode_stream(128, 96, received);
  const double early = luma_mse(clip[1], decoded[1]);
  const double late = luma_mse(clip[11], decoded[11]);
  EXPECT_LT(late, 0.7 * early);
}

TEST(Codec, RejectsInvalidConfigs) {
  EXPECT_THROW(Encoder{CodecConfig{.gop_size = 0}}, std::invalid_argument);
  EXPECT_THROW(Encoder{CodecConfig{.i_qstep = -1.0}}, std::invalid_argument);
  const Encoder encoder{CodecConfig{}};
  EXPECT_THROW(encoder.encode({}), std::invalid_argument);
}

}  // namespace
}  // namespace tv::video
