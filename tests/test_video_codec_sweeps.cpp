// Parameterized codec sweeps: the roundtrip and structural invariants must
// hold across GOP sizes, quantizers and motion levels, not just at the
// defaults.
#include <gtest/gtest.h>

#include <tuple>

#include "video/codec.hpp"
#include "video/frame.hpp"
#include "video/quality.hpp"
#include "video/scene.hpp"

namespace tv::video {
namespace {

FrameSequence sweep_clip(MotionLevel level, int frames, std::uint64_t seed) {
  SceneParameters p = SceneParameters::preset(level);
  p.width = 128;
  p.height = 96;
  return SceneGenerator{p, seed}.render_clip(frames);
}

std::vector<ReceivedFrameData> intact(const EncodedStream& stream) {
  std::vector<ReceivedFrameData> out;
  for (const auto& f : stream.frames) {
    out.push_back(ReceivedFrameData::intact(f.data));
  }
  return out;
}

using SweepParam = std::tuple<int /*gop*/, double /*p_qstep*/, int /*level*/>;

class CodecSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(CodecSweep, RoundtripStructureAndQuality) {
  const auto [gop, p_qstep, level_idx] = GetParam();
  const auto level = static_cast<MotionLevel>(level_idx);
  const int frames = 2 * gop;
  const auto clip = sweep_clip(level, frames, 31 + gop);
  CodecConfig config;
  config.gop_size = gop;
  config.p_qstep = p_qstep;
  const EncodedStream stream = Encoder{config}.encode(clip);

  // Structure: exactly two I-frames at the GOP boundaries.
  int i_count = 0;
  for (const auto& f : stream.frames) i_count += f.is_i ? 1 : 0;
  EXPECT_EQ(i_count, 2);
  EXPECT_TRUE(stream.frames[0].is_i);
  EXPECT_TRUE(stream.frames[static_cast<std::size_t>(gop)].is_i);

  // Quality: lossless-transport decode stays watchable.
  const Decoder decoder{config};
  const auto decoded = decoder.decode_stream(128, 96, intact(stream));
  const double psnr = sequence_psnr(clip, decoded);
  EXPECT_GT(psnr, 28.0) << "gop=" << gop << " q=" << p_qstep
                        << " level=" << to_string(level);

  // Every frame's bitstream parses completely on its own.
  const Frame* ref = nullptr;
  Frame prev(128, 96);
  for (const auto& f : stream.frames) {
    const auto r =
        decoder.decode_frame(ReceivedFrameData::intact(f.data), ref);
    EXPECT_TRUE(r.header_ok);
    EXPECT_EQ(r.decoded_macroblocks, r.total_macroblocks);
    prev = r.frame;
    ref = &prev;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CodecSweep,
    ::testing::Values(SweepParam{5, 14.0, 0}, SweepParam{5, 24.0, 2},
                      SweepParam{10, 18.0, 1}, SweepParam{15, 18.0, 0},
                      SweepParam{15, 26.0, 2}, SweepParam{30, 18.0, 1}));

class LossPosition : public ::testing::TestWithParam<int> {};

TEST_P(LossPosition, EarlierLossesHurtMore) {
  // The monotonicity behind eq. (21): dropping an earlier P-frame of a GOP
  // costs at least as much distortion as dropping a later one.
  const int gop = 12;
  const auto clip = sweep_clip(MotionLevel::kMedium, gop, 47);
  CodecConfig config;
  config.gop_size = gop;
  const EncodedStream stream = Encoder{config}.encode(clip);
  const Decoder decoder{config};
  const auto baseline = decoder.decode_stream(128, 96, intact(stream));

  auto gop_mse_with_loss = [&](int lost) {
    auto received = intact(stream);
    received[static_cast<std::size_t>(lost)] =
        ReceivedFrameData::lost(stream.frames[static_cast<std::size_t>(lost)]
                                    .data.size());
    const auto decoded = decoder.decode_stream(128, 96, received);
    double mse = 0.0;
    for (int i = 0; i < gop; ++i) {
      mse += luma_mse(baseline[static_cast<std::size_t>(i)],
                      decoded[static_cast<std::size_t>(i)]);
    }
    return mse / gop;
  };

  const int early = GetParam();
  const int late = early + 4;
  ASSERT_LT(late, gop);
  // Allow a little slack: intra-refresh can make individual frames heal.
  EXPECT_GE(gop_mse_with_loss(early) * 1.25, gop_mse_with_loss(late))
      << "early=" << early << " late=" << late;
}

INSTANTIATE_TEST_SUITE_P(Positions, LossPosition, ::testing::Values(1, 3, 5));

TEST(CodecSweeps, StreamSizeGrowsWithMotionAcrossGops) {
  for (int gop : {6, 12}) {
    CodecConfig config;
    config.gop_size = gop;
    const Encoder encoder{config};
    const auto low = encoder.encode(sweep_clip(MotionLevel::kLow, gop, 5));
    const auto high = encoder.encode(sweep_clip(MotionLevel::kHigh, gop, 5));
    EXPECT_GT(high.total_bytes(), low.total_bytes()) << "gop " << gop;
  }
}

TEST(CodecSweeps, SmallerGopMeansMoreIntraBytes) {
  const auto clip = sweep_clip(MotionLevel::kMedium, 30, 9);
  CodecConfig small;
  small.gop_size = 5;
  CodecConfig large;
  large.gop_size = 30;
  const auto s = Encoder{small}.encode(clip);
  const auto l = Encoder{large}.encode(clip);
  // Six I-frames vs one: the short-GOP stream carries more total bytes.
  EXPECT_GT(s.total_bytes(), l.total_bytes());
}

}  // namespace
}  // namespace tv::video
