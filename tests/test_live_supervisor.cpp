// Session supervision: the control protocol, the backoff/degradation
// maths, and the client state machine driven against a real Server on
// the virtual clock with seeded chaos.
#include "live/supervisor.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "core/trace.hpp"
#include "live/event_loop.hpp"
#include "live/server.hpp"
#include "policy/policy.hpp"
#include "util/rng.hpp"
#include "util/arena.hpp"

namespace tv::live {
namespace {

TEST(ControlMsg, RoundTripsEveryType) {
  for (const auto type :
       {ControlMsg::Type::kHello, ControlMsg::Type::kAccept,
        ControlMsg::Type::kReject, ControlMsg::Type::kBye,
        ControlMsg::Type::kByeAck}) {
    ControlMsg msg;
    msg.type = type;
    msg.ssrc = 0xDEADBEEF;
    msg.aux = 12345;
    const auto bytes = msg.serialize();
    ASSERT_EQ(bytes.size(), ControlMsg::kSize);
    // The magic's first byte must be distinguishable from RTP version 2,
    // whose first byte is always 0x80 — that is the whole demux story.
    EXPECT_EQ(bytes[0], 'T');
    EXPECT_NE(bytes[0] & 0xC0, 0x80);
    const auto parsed = ControlMsg::try_parse(bytes);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->type, type);
    EXPECT_EQ(parsed->ssrc, 0xDEADBEEFu);
    EXPECT_EQ(parsed->aux, 12345u);
  }
}

TEST(ControlMsg, RejectsForeignDatagrams) {
  ControlMsg msg;
  auto bytes = msg.serialize();
  bytes[2] = 'X';  // wrong magic.
  EXPECT_FALSE(ControlMsg::try_parse(bytes).has_value());

  bytes = msg.serialize();
  bytes[4] = 99;  // unknown type.
  EXPECT_FALSE(ControlMsg::try_parse(bytes).has_value());

  bytes = msg.serialize();
  bytes.push_back(0);  // wrong size.
  EXPECT_FALSE(ControlMsg::try_parse(bytes).has_value());
  EXPECT_FALSE(ControlMsg::try_parse({}).has_value());
}

TEST(Backoff, GrowsExponentiallyAndCaps) {
  SupervisorConfig config;
  config.backoff_base_s = 0.05;
  config.backoff_multiplier = 2.0;
  config.backoff_max_s = 0.4;
  config.backoff_jitter = 0.0;
  util::Rng rng{1};
  EXPECT_DOUBLE_EQ(backoff_wait_s(config, 0, rng), 0.05);
  EXPECT_DOUBLE_EQ(backoff_wait_s(config, 1, rng), 0.10);
  EXPECT_DOUBLE_EQ(backoff_wait_s(config, 2, rng), 0.20);
  EXPECT_DOUBLE_EQ(backoff_wait_s(config, 3, rng), 0.40);
  EXPECT_DOUBLE_EQ(backoff_wait_s(config, 9, rng), 0.40);  // capped.
}

TEST(Backoff, JitterStaysWithinTheBand) {
  SupervisorConfig config;
  config.backoff_jitter = 0.25;
  util::Rng rng{7};
  for (int attempt = 0; attempt < 8; ++attempt) {
    const double nominal =
        std::min(config.backoff_base_s *
                     std::pow(config.backoff_multiplier, attempt),
                 config.backoff_max_s);
    for (int draw = 0; draw < 32; ++draw) {
      const double wait = backoff_wait_s(config, attempt, rng);
      EXPECT_GE(wait, nominal * 0.75);
      EXPECT_LE(wait, nominal * 1.25);
    }
  }
}

TEST(Degrade, LadderWalksDownToIFramesAndStops) {
  using policy::Mode;
  policy::EncryptionPolicy p;
  p.mode = Mode::kAll;
  p = policy::degrade_step(p);
  EXPECT_EQ(p.mode, Mode::kIPlusFractionP);
  EXPECT_DOUBLE_EQ(p.fraction, 0.5);
  p = policy::degrade_step(p);
  EXPECT_DOUBLE_EQ(p.fraction, 0.25);
  p = policy::degrade_step(p);
  EXPECT_DOUBLE_EQ(p.fraction, 0.125);
  p = policy::degrade_step(p);
  EXPECT_DOUBLE_EQ(p.fraction, 0.0625);
  p = policy::degrade_step(p);  // 0.03125 < 5% snaps to the I floor.
  EXPECT_EQ(p.mode, Mode::kIFrames);
  p = policy::degrade_step(p);  // floor: unchanged forever.
  EXPECT_EQ(p.mode, Mode::kIFrames);

  policy::EncryptionPolicy pframes;
  pframes.mode = Mode::kPFrames;
  EXPECT_EQ(policy::degrade_step(pframes).mode, Mode::kNone);
  policy::EncryptionPolicy partial;
  partial.mode = Mode::kFractionI;
  partial.fraction = 0.5;
  EXPECT_EQ(policy::degrade_step(partial).mode, Mode::kNone);
  policy::EncryptionPolicy none;
  EXPECT_EQ(policy::degrade_step(none).mode, Mode::kNone);
}

TEST(SupervisorConfig, ValidateRejectsNonsense) {
  SupervisorConfig config;
  config.queue_cap = 0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = {};
  config.backoff_multiplier = 0.5;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = {};
  config.backoff_jitter = 1.0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = {};
  EXPECT_NO_THROW(config.validate());
}

// ---- Client-vs-server state machine scenarios -----------------------------

util::Arena& test_arena() {
  static util::Arena arena;  // lives for the whole test binary.
  return arena;
}

std::vector<net::VideoPacket> make_packets(int count) {
  std::vector<net::VideoPacket> packets;
  for (int i = 0; i < count; ++i) {
    net::VideoPacket p;
    p.sequence = static_cast<std::uint16_t>(i);
    p.timestamp = 90000u + static_cast<std::uint32_t>(i);
    p.allocate_payload(test_arena(), 48, static_cast<std::uint8_t>(i));
    packets.push_back(std::move(p));
  }
  return packets;
}

PacedSchedule steady_schedule(int count, double spacing_s,
                              double send_offset_s = 0.0) {
  PacedSchedule schedule;
  for (int i = 0; i < count; ++i) {
    schedule.arrival_s.push_back(spacing_s * i);
    schedule.send_s.push_back(spacing_s * i + send_offset_s);
  }
  return schedule;
}

struct Scenario {
  EventLoop loop{ClockMode::kVirtual};
  std::vector<net::VideoPacket> packets;
  std::unique_ptr<Server> server;
  std::unique_ptr<ClientSession> client;

  Scenario(int count, ServerConfig server_config, ClientConfig client_config,
           PacedSchedule schedule)
      : packets(make_packets(count)) {
    server = std::make_unique<Server>(loop, std::move(server_config));
    server->start();
    client_config.server = server->endpoint();
    client = std::make_unique<ClientSession>(loop, std::move(client_config),
                                             packets, packets,
                                             std::move(schedule));
  }

  void run() {
    client->start();
    loop.run();
  }
};

TEST(ClientSession, CleanRunCompletesAndDeliversEverything) {
  ClientConfig config;
  config.ssrc = 0x1111;
  Scenario s{12, ServerConfig{}, config, steady_schedule(12, 0.01)};
  s.run();

  const ClientStats& stats = s.client->stats();
  EXPECT_EQ(stats.outcome, SessionOutcome::kCompleted);
  EXPECT_EQ(stats.state, SessionState::kClosed);
  EXPECT_TRUE(stats.bye_acked);
  EXPECT_EQ(stats.packets_sent, 12u);
  EXPECT_EQ(stats.packets_shed, 0u);
  EXPECT_EQ(stats.send_retries, 0u);

  const auto sessions = s.server->finish();
  ASSERT_EQ(sessions.size(), 1u);
  EXPECT_EQ(sessions[0].ssrc, 0x1111u);
  EXPECT_EQ(sessions[0].state, SessionState::kClosed);
  EXPECT_EQ(sessions[0].outcome, SessionOutcome::kCompleted);
  EXPECT_EQ(sessions[0].expected_packets, 12u);
  EXPECT_EQ(sessions[0].reported_sent, 12u);
  EXPECT_EQ(sessions[0].packets.size(), 12u);
}

TEST(ClientSession, LostAcceptsAreRetriedUntilAdmitted) {
  ServerConfig server_config;
  server_config.ctrl_drop_prob = 0.5;  // every other reply vanishes.
  server_config.seed = 3;
  ClientConfig config;
  config.ssrc = 0x2222;
  config.supervisor.backoff_jitter = 0.0;
  Scenario s{6, server_config, config, steady_schedule(6, 0.01)};
  s.run();

  const ClientStats& stats = s.client->stats();
  // The session got through, but only via the retry ladder.
  EXPECT_EQ(stats.outcome, SessionOutcome::kRecovered);
  EXPECT_GE(stats.handshake_retries + stats.bye_retries, 1u);
  EXPECT_TRUE(s.server->report().ctrl_drops >= 1u);
  const auto sessions = s.server->finish();
  ASSERT_EQ(sessions.size(), 1u);
  EXPECT_EQ(sessions[0].packets.size(), 6u);  // data path unaffected.
}

TEST(ClientSession, HandshakeExhaustionKillsClientAndServerReapsTheSlot) {
  ServerConfig server_config;
  server_config.ctrl_drop_prob = 1.0;  // the server's voice never arrives.
  server_config.idle_timeout_s = 0.5;
  ClientConfig config;
  config.ssrc = 0x3333;
  config.supervisor.max_handshake_retries = 3;
  Scenario s{4, server_config, config, steady_schedule(4, 0.01)};
  s.run();

  const ClientStats& stats = s.client->stats();
  EXPECT_EQ(stats.outcome, SessionOutcome::kWatchdogKilled);
  EXPECT_EQ(stats.state, SessionState::kFailed);
  EXPECT_EQ(stats.handshake_retries, 3u);
  EXPECT_EQ(stats.packets_sent, 0u);

  // The server admitted the SSRC on the first HELLO and must reap the
  // silent slot through its own watchdog, releasing the token.
  const auto sessions = s.server->finish();
  ASSERT_EQ(sessions.size(), 1u);
  EXPECT_EQ(sessions[0].outcome, SessionOutcome::kWatchdogKilled);
  EXPECT_EQ(s.server->report().watchdog_killed, 1u);
  EXPECT_EQ(s.server->active_sessions(), 0u);
}

TEST(ClientSession, ChaosKillGoesSilentAndBothSidesClassifyIt) {
  ServerConfig server_config;
  server_config.idle_timeout_s = 0.5;
  ClientConfig config;
  config.ssrc = 0x4444;
  Scenario s{20, server_config, config, steady_schedule(20, 0.05)};
  s.loop.schedule_at(0.42, [&s] { s.client->chaos_kill(); });
  s.run();

  const ClientStats& stats = s.client->stats();
  EXPECT_TRUE(stats.chaos_killed);
  EXPECT_EQ(stats.outcome, SessionOutcome::kWatchdogKilled);
  EXPECT_LT(stats.packets_sent, 20u);

  const auto sessions = s.server->finish();
  ASSERT_EQ(sessions.size(), 1u);
  EXPECT_EQ(sessions[0].outcome, SessionOutcome::kWatchdogKilled);
  EXPECT_LT(sessions[0].packets.size(), 20u);
  EXPECT_EQ(s.server->report().watchdog_killed, 1u);
}

TEST(ClientSession, QueueCapShedsOldestUnderBurstArrivals) {
  // Every packet is released immediately but none may be sent before
  // t=1: the queue must fill, cap, and shed oldest-first.
  ClientConfig config;
  config.ssrc = 0x5555;
  config.supervisor.queue_cap = 8;
  config.supervisor.degrade_depth = 1000;  // isolate the shedding path.
  Scenario s{20, ServerConfig{}, config,
             steady_schedule(20, 0.001, /*send_offset_s=*/1.0)};
  s.run();

  const ClientStats& stats = s.client->stats();
  EXPECT_EQ(stats.outcome, SessionOutcome::kRecovered);
  EXPECT_EQ(stats.packets_shed, 12u);  // 20 released, cap 8.
  EXPECT_EQ(stats.packets_sent, 8u);
  EXPECT_LE(stats.max_queue_depth, config.supervisor.queue_cap + 1);

  const auto sessions = s.server->finish();
  ASSERT_EQ(sessions.size(), 1u);
  // The survivors are the *newest* 12..19; oldest were shed.
  ASSERT_EQ(sessions[0].packets.size(), 8u);
  EXPECT_EQ(sessions[0].packets.front().header.sequence_number, 12u);
}

TEST(ClientSession, QueuePressureStepsThePolicyDown) {
  auto packets = make_packets(24);
  for (int i = 0; i < 24; ++i) {
    packets[i].is_i_frame = i % 4 == 0;
    packets[i].encrypted = true;  // policy "all" encrypted the lot.
  }
  EventLoop loop{ClockMode::kVirtual};
  Server server{loop, ServerConfig{}};
  server.start();
  ClientConfig config;
  config.server = server.endpoint();
  config.ssrc = 0x6666;
  config.policy.mode = policy::Mode::kAll;
  config.supervisor.degrade_depth = 4;
  config.supervisor.queue_cap = 1000;
  ClientSession client{loop, std::move(config), packets, packets,
                       steady_schedule(24, 0.001, /*send_offset_s=*/1.0)};
  client.start();
  loop.run();

  const ClientStats& stats = client.stats();
  EXPECT_EQ(stats.outcome, SessionOutcome::kRecovered);
  EXPECT_GE(stats.degrade_steps, 1);
  EXPECT_GE(stats.packets_degraded, 1u);  // shipped clear under pressure.
  EXPECT_EQ(stats.packets_sent, 24u);     // nothing lost, only downgraded.
  EXPECT_EQ(stats.packets_shed, 0u);
}

TEST(ClientSession, UnackedByeDegradesToRecoveredNeverFailure) {
  // An egress outage opens just after the handshake: data and BYEs are
  // silently swallowed.  The BYE ladder must exhaust into kRecovered —
  // the client cannot know what was delivered — while the server reaps
  // the silent session.
  ServerConfig server_config;
  server_config.idle_timeout_s = 1.0;
  ClientConfig config;
  config.ssrc = 0x7777;
  config.chaos.outages = {{0.025, 600.0}};
  config.supervisor.max_bye_retries = 2;
  config.supervisor.backoff_jitter = 0.0;
  Scenario s{5, server_config, config, steady_schedule(5, 0.01)};
  s.run();

  const ClientStats& stats = s.client->stats();
  EXPECT_EQ(stats.outcome, SessionOutcome::kRecovered);
  EXPECT_FALSE(stats.bye_acked);
  EXPECT_EQ(stats.bye_retries, 2u);
  const auto sessions = s.server->finish();
  ASSERT_EQ(sessions.size(), 1u);
  EXPECT_EQ(sessions[0].outcome, SessionOutcome::kWatchdogKilled);
}

TEST(ClientSession, TotalEagainStormBlackholesEvenTheHandshake) {
  // sendto() fails every single time: not even the HELLO escapes the
  // process.  The handshake ladder must exhaust into watchdog-killed and
  // the server must never have heard of the session.
  ClientConfig config;
  config.ssrc = 0x8888;
  config.chaos.eagain_prob = 1.0;
  config.supervisor.max_handshake_retries = 3;
  ServerConfig server_config;
  server_config.idle_timeout_s = 0.5;
  Scenario s{6, server_config, config, steady_schedule(6, 0.01)};
  s.run();

  const ClientStats& stats = s.client->stats();
  EXPECT_EQ(stats.outcome, SessionOutcome::kWatchdogKilled);
  EXPECT_EQ(stats.handshake_retries, 3u);
  EXPECT_EQ(stats.packets_sent, 0u);
  EXPECT_GE(s.client->chaos_stats().eagain_injected, 4u);
  EXPECT_EQ(s.server->report().hellos, 0u);
  EXPECT_TRUE(s.server->finish().empty());
}

TEST(ClientSession, IntermittentEagainIsAbsorbedByTheRetryLadder) {
  // A bursty EAGAIN storm (well under the retry budget): every packet
  // must eventually make it to the wire and the run must classify as
  // recovered, not completed — recovery actions were needed.
  ClientConfig config;
  config.ssrc = 0x9999;
  config.seed = 5;
  config.chaos.eagain_prob = 0.4;
  config.supervisor.send_retry_base_s = 1e-4;
  Scenario s{16, ServerConfig{}, config, steady_schedule(16, 0.01)};
  s.run();

  const ClientStats& stats = s.client->stats();
  EXPECT_EQ(stats.outcome, SessionOutcome::kRecovered);
  EXPECT_EQ(stats.packets_sent, 16u);
  EXPECT_EQ(stats.packets_shed, 0u);
  EXPECT_GE(stats.send_retries, 1u);
  EXPECT_GE(s.client->chaos_stats().eagain_injected, 1u);
  const auto sessions = s.server->finish();
  ASSERT_EQ(sessions.size(), 1u);
  EXPECT_EQ(sessions[0].packets.size(), 16u);
}

}  // namespace
}  // namespace tv::live
