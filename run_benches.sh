#!/bin/bash
# Run every reproduction bench and print the paper-style tables.
cd "$(dirname "$0")"
for b in build/bench/bench_*; do
  [ -f "$b" ] && [ -x "$b" ] || continue
  echo "############################################################"
  echo "## $b"
  echo "############################################################"
  "$b" "$@"
  echo
done
