#!/bin/bash
# Run every reproduction bench and print the paper-style tables.
#
#   ./run_benches.sh [bench flags...]   all benches, flags passed through
#   ./run_benches.sh --json             hot-path suite only, refreshing the
#                                       BENCH_*.json perf trajectory at the
#                                       repo root (docs/benchmarks.md)
cd "$(dirname "$0")"

if [ "$1" = "--json" ]; then
  shift
  bench=build/bench/bench_hotpath
  if [ ! -x "$bench" ]; then
    echo "error: $bench not built (cmake --build build --target bench_hotpath)" >&2
    exit 1
  fi
  "$bench" --json=BENCH_hotpath.json "$@"
  exit $?
fi

for b in build/bench/bench_*; do
  [ -f "$b" ] && [ -x "$b" ] || continue
  echo "############################################################"
  echo "## $b"
  echo "############################################################"
  "$b" "$@"
  echo
done
