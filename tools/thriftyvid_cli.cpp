// thriftyvid — command-line front end.
//
//   thriftyvid classify <clip.y4m>
//       AForge-style motion classification of a YUV4MPEG2 clip.
//
//   thriftyvid simulate [--motion=low|medium|high] [--gop=N] [--frames=N]
//                       [--policy=none|I|P|all|I+<pct>P] [--alg=AES128|AES256|3DES]
//                       [--device=samsung|htc] [--transport=udp|tcp]
//                       [--reps=N] [--seed=S]
//                       [--loss=P] [--burst=L] [--outage=START:DURATION,...]
//       Run the full Fig.-3 pipeline and print measured metrics with 95%
//       CIs next to the analytic predictions.  --loss/--burst switch the
//       link to a Gilbert-Elliott bursty channel (mean loss P, mean burst
//       length L packets); --outage schedules AP blackout windows, and the
//       resilience counters (retransmissions, deadline/outage drops,
//       recorded failures) are reported after the metrics.
//
//   thriftyvid advise [--motion=...] [--ceiling=DB] [--objective=delay|power]
//                     [--alg=...] [--device=...]
//       The Fig.-1 workflow: calibrate on a probe transfer, evaluate the
//       policy ladder analytically, recommend the cheapest confidential
//       policy.
//
//   thriftyvid export [--motion=...] [--policy=...] [--outdir=DIR]
//       Write original/receiver/eavesdropper .y4m files plus the
//       eavesdropper's .pcap capture.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <map>
#include <string>

#include "core/advisor.hpp"
#include "core/experiment.hpp"
#include "net/pcap.hpp"
#include "video/motion.hpp"
#include "video/y4m.hpp"

using namespace tv;

namespace {

struct Args {
  std::map<std::string, std::string> options;
  std::vector<std::string> positional;

  static Args parse(int argc, char** argv, int from) {
    Args a;
    for (int i = from; i < argc; ++i) {
      std::string s = argv[i];
      if (s.rfind("--", 0) == 0) {
        const auto eq = s.find('=');
        if (eq == std::string::npos) {
          a.options[s.substr(2)] = "1";
        } else {
          a.options[s.substr(2, eq - 2)] = s.substr(eq + 1);
        }
      } else {
        a.positional.push_back(std::move(s));
      }
    }
    return a;
  }

  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback) const {
    const auto it = options.find(key);
    return it == options.end() ? fallback : it->second;
  }
  [[nodiscard]] int get_int(const std::string& key, int fallback) const {
    const auto it = options.find(key);
    return it == options.end() ? fallback : std::stoi(it->second);
  }
  [[nodiscard]] double get_double(const std::string& key,
                                  double fallback) const {
    const auto it = options.find(key);
    return it == options.end() ? fallback : std::stod(it->second);
  }
};

video::MotionLevel parse_motion(const std::string& s) {
  if (s == "low" || s == "slow") return video::MotionLevel::kLow;
  if (s == "medium") return video::MotionLevel::kMedium;
  if (s == "high" || s == "fast") return video::MotionLevel::kHigh;
  throw std::invalid_argument{"unknown motion level: " + s};
}

crypto::Algorithm parse_alg(const std::string& s) {
  return crypto::algorithm_from_string(s);
}

core::DeviceProfile parse_device(const std::string& s) {
  if (s == "samsung") return core::samsung_galaxy_s2();
  if (s == "htc") return core::htc_amaze_4g();
  throw std::invalid_argument{"unknown device: " + s + " (samsung|htc)"};
}

policy::EncryptionPolicy parse_policy(const std::string& s,
                                      crypto::Algorithm alg) {
  if (s == "none") return {policy::Mode::kNone, alg, 0.0};
  if (s == "I") return {policy::Mode::kIFrames, alg, 0.0};
  if (s == "P") return {policy::Mode::kPFrames, alg, 0.0};
  if (s == "all") return {policy::Mode::kAll, alg, 0.0};
  // I+<pct>P, e.g. I+20P.
  if (s.rfind("I+", 0) == 0 && s.back() == 'P') {
    const double pct = std::stod(s.substr(2, s.size() - 3));
    return {policy::Mode::kIPlusFractionP, alg, pct / 100.0};
  }
  throw std::invalid_argument{"unknown policy: " + s +
                              " (none|I|P|all|I+<pct>P)"};
}

int cmd_classify(const Args& args) {
  if (args.positional.empty()) {
    std::fprintf(stderr, "usage: thriftyvid classify <clip.y4m>\n");
    return 2;
  }
  const auto clip = video::read_y4m_file(args.positional.front());
  const auto report = video::classify_motion(clip.frames);
  std::printf("%s: %zu frames %dx%d @%d/%d fps\n",
              args.positional.front().c_str(), clip.frames.size(),
              clip.frames.front().width(), clip.frames.front().height(),
              clip.fps_numerator, clip.fps_denominator);
  std::printf("motion score %.4f -> %s motion\n", report.score,
              video::to_string(report.level));
  std::printf("suggested decoder sensitivity fraction: %.2f\n",
              core::default_sensitivity(report.level));
  return 0;
}

// Parses "--outage=START:DURATION[,START:DURATION...]" (seconds).
std::vector<wifi::OutageWindow> parse_outages(const std::string& spec) {
  std::vector<wifi::OutageWindow> outages;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    const auto comma = spec.find(',', pos);
    const auto item = spec.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos);
    const auto colon = item.find(':');
    if (colon == std::string::npos) {
      throw std::invalid_argument{
          "outage window must be START:DURATION, got: " + item};
    }
    outages.push_back({std::stod(item.substr(0, colon)),
                       std::stod(item.substr(colon + 1))});
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return outages;
}

// Installs a Gilbert-Elliott channel model when any of --loss/--burst/
// --outage is present; otherwise leaves the legacy i.i.d. losses in place.
void apply_channel_flags(const Args& args, core::PipelineConfig& pipeline) {
  const bool wants_channel = args.options.count("loss") ||
                             args.options.count("burst") ||
                             args.options.count("outage");
  if (!wants_channel) return;
  core::ChannelModel channel;
  channel.receiver.mean_loss_prob =
      args.get_double("loss", pipeline.receiver_loss_prob);
  channel.receiver.mean_burst_length = args.get_double("burst", 1.0);
  channel.eavesdropper.mean_loss_prob = pipeline.eavesdropper_loss_prob;
  channel.eavesdropper.mean_burst_length = 1.0;
  const auto it = args.options.find("outage");
  if (it != args.options.end()) channel.outages = parse_outages(it->second);
  pipeline.channel = channel;
}

core::Workload workload_from(const Args& args) {
  return core::build_workload(parse_motion(args.get("motion", "low")),
                              args.get_int("gop", 30),
                              args.get_int("frames", 120),
                              static_cast<std::uint64_t>(
                                  args.get_int("seed", 1)));
}

int cmd_simulate(const Args& args) {
  const auto alg = parse_alg(args.get("alg", "AES256"));
  const auto workload = workload_from(args);
  core::ExperimentSpec spec;
  spec.policy = parse_policy(args.get("policy", "I"), alg);
  spec.pipeline.device = parse_device(args.get("device", "samsung"));
  spec.pipeline.transport = args.get("transport", "udp") == "tcp"
                                ? core::Transport::kHttpTcp
                                : core::Transport::kRtpUdp;
  spec.repetitions = args.get_int("reps", 5);
  spec.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  spec.sensitivity_fraction = core::default_sensitivity(workload.motion);
  apply_channel_flags(args, spec.pipeline);
  // Fail fast on configuration mistakes; run_experiment itself downgrades
  // per-repetition failures to FailureEvents and would otherwise report a
  // bad --loss/--burst as "0 completed" with all-zero statistics.
  core::validate(spec.pipeline);

  const auto r = core::run_experiment(spec, workload);
  std::printf("workload: %s motion, GOP %d, %zu frames, I=%.0fB P=%.0fB\n",
              video::to_string(workload.motion), workload.codec.gop_size,
              workload.clip.size(), workload.stream.mean_i_bytes(),
              workload.stream.mean_p_bytes());
  std::printf("policy %s on %s over %s: %.0f%% of packets encrypted\n",
              r.label.c_str(), spec.pipeline.device.name.c_str(),
              core::to_string(spec.pipeline.transport),
              100.0 * r.encryption.packet_fraction());
  std::printf("  delay        %7.2f ms ±%.2f   (model %.2f ms, rho %.2f)\n",
              r.delay_ms.mean(), r.delay_ms.ci95_halfwidth(),
              r.predicted_delay.mean_delay_ms,
              r.predicted_delay.utilization);
  std::printf("  receiver     %7.2f dB ±%.2f   MOS %.2f\n",
              r.receiver_psnr_db.mean(), r.receiver_psnr_db.ci95_halfwidth(),
              r.receiver_mos.mean());
  std::printf("  eavesdropper %7.2f dB ±%.2f   MOS %.2f   (model %.2f dB)\n",
              r.eavesdropper_psnr_db.mean(),
              r.eavesdropper_psnr_db.ci95_halfwidth(),
              r.eavesdropper_mos.mean(), r.predicted_eavesdropper.psnr_db);
  std::printf("  power        %7.2f W           (model %.2f W)\n",
              r.power_w.mean(), r.predicted_power.mean_power_w);
  if (spec.pipeline.channel) {
    const auto& ch = *spec.pipeline.channel;
    std::printf("channel: Gilbert-Elliott loss %.0f%% burst %.1f, "
                "%zu outage window(s)\n",
                100.0 * ch.receiver.mean_loss_prob,
                ch.receiver.mean_burst_length, ch.outages.size());
    std::printf("  repetitions  %d completed, %d failed\n",
                r.completed_repetitions, r.failed_repetitions);
    std::printf("  resilience   %llu retransmissions, %llu deadline drops, "
                "%llu outage drops\n",
                static_cast<unsigned long long>(r.total_retransmissions),
                static_cast<unsigned long long>(r.total_deadline_drops),
                static_cast<unsigned long long>(r.total_outage_drops));
    std::printf("  failures     %zu recorded", r.failures.size());
    std::size_t shown = 0;
    for (const auto& f : r.failures) {
      if (shown++ >= 5) {
        std::printf(" ...");
        break;
      }
      std::printf("%s rep %d %s@%.3fs", shown == 1 ? ":" : ",", f.repetition,
                  core::to_string(f.kind), f.time_s);
    }
    std::printf("\n");
  }
  return 0;
}

int cmd_advise(const Args& args) {
  const auto alg = parse_alg(args.get("alg", "AES256"));
  const auto workload = workload_from(args);
  core::PipelineConfig pipeline;
  pipeline.device = parse_device(args.get("device", "samsung"));
  const auto probe = core::simulate_transfer(
      pipeline, workload.packets,
      static_cast<std::uint64_t>(args.get_int("seed", 1)));
  const auto traffic =
      core::calibrate_traffic(workload.packets, probe.timings, workload.fps);
  const auto service = core::calibrate_service(workload.packets,
                                               probe.timings, pipeline,
                                               traffic);
  core::DistortionInputs di;
  di.gop_size = workload.codec.gop_size;
  di.n_gops = static_cast<int>(workload.stream.frames.size()) /
              workload.codec.gop_size;
  di.sensitivity_fraction = core::default_sensitivity(workload.motion);
  di.base_mse = workload.base_mse;
  di.null_mse = workload.null_mse;
  di.inter = workload.inter;

  core::AdvisorRequest request;
  request.algorithm = alg;
  request.max_eavesdropper_psnr_db = args.get_double("ceiling", 18.0);
  request.objective = args.get("objective", "delay") == "power"
                          ? core::AdvisorRequest::Objective::kPower
                          : core::AdvisorRequest::Objective::kDelay;
  const auto result =
      core::advise(request, traffic, service, pipeline.device, di,
                   1.0 - pipeline.eavesdropper_loss_prob);

  std::printf("%-16s %-11s %-10s %-9s %s\n", "policy", "delay ms",
              "eaves dB", "power W", "confidential");
  for (const auto& e : result.evaluations) {
    std::printf("%-16s %-11.1f %-10.1f %-9.2f %s\n",
                e.policy.label().c_str(), e.delay.mean_delay_ms,
                e.eavesdropper.psnr_db, e.power.mean_power_w,
                e.confidential ? "yes" : "no");
  }
  if (result.recommendation) {
    std::printf("\nrecommendation: %s\n",
                result.recommendation->policy.label().c_str());
    return 0;
  }
  std::printf("\nno policy meets the %.1f dB ceiling\n",
              request.max_eavesdropper_psnr_db);
  return 1;
}

int cmd_export(const Args& args) {
  const auto alg = parse_alg(args.get("alg", "AES256"));
  const auto workload = workload_from(args);
  const auto pol = parse_policy(args.get("policy", "I"), alg);
  const std::string outdir = args.get("outdir", "out");
  std::filesystem::create_directories(outdir);

  std::vector<net::VideoPacket> packets = workload.packets;
  const auto selected = pol.select(packets);
  const auto cipher = crypto::make_cipher_from_seed(
      pol.algorithm, static_cast<std::uint64_t>(args.get_int("seed", 1)));
  std::vector<std::uint8_t> iv(cipher->block_size(), 0x5c);
  net::encrypt_selected(packets, selected, *cipher, iv);

  core::PipelineConfig pipeline;
  pipeline.device = parse_device(args.get("device", "samsung"));
  const auto transfer = core::simulate_transfer(
      pipeline, packets, static_cast<std::uint64_t>(args.get_int("seed", 1)));
  const int frames = static_cast<int>(workload.stream.frames.size());
  const video::Decoder decoder{workload.codec};

  const auto rx = decoder.decode_stream(
      workload.stream.width, workload.stream.height,
      net::reassemble(packets, transfer.receiver_delivered, frames,
                      cipher.get(), iv));
  const auto ev = decoder.decode_stream(
      workload.stream.width, workload.stream.height,
      net::reassemble(packets, transfer.eavesdropper_captured, frames,
                      nullptr, iv));

  video::write_y4m_file(outdir + "/original.y4m", workload.clip);
  video::write_y4m_file(outdir + "/receiver.y4m", rx);
  video::write_y4m_file(outdir + "/eavesdropper.y4m", ev);
  std::vector<double> stamps;
  for (const auto& t : transfer.timings) stamps.push_back(t.completion);
  net::write_pcap_file(
      outdir + "/eavesdropper.pcap",
      net::capture_of(packets, transfer.eavesdropper_captured, stamps));
  std::printf("wrote %s/{original,receiver,eavesdropper}.y4m and "
              "eavesdropper.pcap  (policy %s, rx %.1f dB, eaves %.1f dB)\n",
              outdir.c_str(), pol.label().c_str(),
              video::sequence_psnr(workload.clip, rx),
              video::sequence_psnr(workload.clip, ev));
  return 0;
}

int usage() {
  std::fprintf(stderr,
               "usage: thriftyvid <classify|simulate|advise|export> "
               "[options]\n  (see the header of tools/thriftyvid_cli.cpp "
               "for the full option list)\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  const Args args = Args::parse(argc, argv, 2);
  try {
    if (cmd == "classify") return cmd_classify(args);
    if (cmd == "simulate") return cmd_simulate(args);
    if (cmd == "advise") return cmd_advise(args);
    if (cmd == "export") return cmd_export(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
