// thriftyvid — command-line front end.
//
// Subcommands: classify, simulate, sweep, cell, advise, export, analyze,
// live.  Every
// subcommand's flags are registered in a util::FlagSet, which both rejects
// unknown options and generates the command's `--help` text — run
// `thriftyvid <command> --help` for the authoritative option list.
//
// `simulate` has two modes: the default packet-faithful pipeline experiment
// (Fig. 3), and — when `--events` is given — the model-validation grid
// (docs/validation.md) that cross-checks the discrete-event simulators
// against the closed forms.  Both accept `--trace=FILE` to stream
// per-packet stage events as JSONL (schema in docs/architecture.md).
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <string>

#include "analysis/sweep.hpp"
#include "cell/cell.hpp"
#include "cell/validation.hpp"
#include "core/advisor.hpp"
#include "core/experiment.hpp"
#include "core/sweep.hpp"
#include "core/trace.hpp"
#include "live/chaos.hpp"
#include "live/event_loop.hpp"
#include "live/load.hpp"
#include "live/loopback.hpp"
#include "live/receiver_session.hpp"
#include "live/sender.hpp"
#include "net/pcap.hpp"
#include "sim/validation.hpp"
#include "util/build_info.hpp"
#include "util/flags.hpp"
#include "util/thread_pool.hpp"
#include "video/motion.hpp"
#include "video/y4m.hpp"
#include "util/arena.hpp"

using namespace tv;
using util::Flags;
using util::FlagSet;

namespace {

// --- Flag registries (one per subcommand / mode). --------------------------
// The registry is the single source of truth: check() rejects anything not
// registered, help_text() renders the same list for --help.

FlagSet classify_flagset() {
  return FlagSet{"thriftyvid classify <clip.y4m>",
                 "AForge-style motion classification of a YUV4MPEG2 clip."};
}

FlagSet simulate_flagset() {
  FlagSet fs{"thriftyvid simulate",
             "Run the full Fig.-3 pipeline and print measured metrics with "
             "95% CIs next to the analytic predictions.  With --events=N "
             "the command switches to the model-validation grid (see "
             "'thriftyvid simulate --events=1 --help')."};
  fs.flag("motion", "low|medium|high", "synthetic clip motion level")
      .flag("gop", "N", "GOP size in frames (default 30)")
      .flag("frames", "N", "clip length in frames (default 120)")
      .flag("policy", "none|I|P|all|I+<pct>P|<pct>I",
            "selective-encryption policy (default I)")
      .flag("alg", "AES128|AES256|3DES", "cipher (default AES256)")
      .flag("device", "samsung|htc", "calibrated device profile")
      .flag("transport", "udp|tcp", "RTP/UDP or the reliable HTTP/TCP ARQ")
      .flag("reps", "N", "experiment repetitions (default 5)")
      .flag("seed", "S", "root RNG seed (default 1)")
      .flag("loss", "P", "Gilbert-Elliott mean loss probability")
      .flag("burst", "L", "Gilbert-Elliott mean burst length (packets)")
      .flag("outage", "START:DUR,...", "scheduled AP blackout windows (s)")
      .flag("trace", "FILE", "write per-packet stage events as JSONL")
      .flag("stage-stats", "", "print per-stage counters and mean times");
  return fs;
}

FlagSet simulate_validation_flagset() {
  FlagSet fs{"thriftyvid simulate --events=N",
             "Model-validation grid (docs/validation.md): discrete-event "
             "simulations of the MMPP/G/1 sender and the eavesdropper's GOP "
             "recovery, cross-checked against eqs. 3-28.  Exit 0 iff every "
             "check passes; output is bit-identical for any --threads."};
  fs.flag("events", "N", "measured sender packets per cell")
      .flag("warmup", "N", "discarded transient packets (default 40000)")
      .flag("batches", "N", "batch-mean batches for the E[W] CI")
      .flag("threads", "N", "worker threads (default: hardware)")
      .flag("lambda1s", "A,B", "I-burst arrival-rate axis (1/s)")
      .flag("lambda2s", "A,B", "P-drain arrival-rate axis (1/s)")
      .flag("policies", "none,I,...", "policy axis")
      .flag("algs", "AES256,3DES", "cipher axis")
      .flag("device", "samsung|htc", "calibrated device profile")
      .flag("gop", "N", "GOP size for the eavesdropper model")
      .flag("ngops", "N", "GOPs per simulated flow")
      .flag("eaves-reps", "N", "simulated eavesdropper flows per cell")
      .flag("z", "Z", "acceptance multiplier on CI halfwidths")
      .flag("format", "table|jsonl", "output format (default table)")
      .flag("out", "FILE", "write results to FILE instead of stdout")
      .flag("seed", "S", "root RNG seed (default 1)")
      .flag("trace", "FILE",
            "write sender service-stage events as JSONL (serializes cells)");
  return fs;
}

FlagSet sweep_flagset() {
  FlagSet fs{"thriftyvid sweep",
             "Run the cartesian experiment grid over every listed axis "
             "value on a work-stealing thread pool (docs/sweeps.md).  "
             "Per-cell seeds derive deterministically from --seed, so any "
             "--threads value produces bit-identical output."};
  fs.flag("motions", "low,high", "motion-level axis")
      .flag("gops", "30,50", "GOP-size axis")
      .flag("policies", "none,I,P,all", "policy axis")
      .flag("algs", "AES256,3DES", "cipher axis")
      .flag("devices", "samsung,htc", "device-profile axis")
      .flag("transports", "udp,tcp", "transport axis")
      .flag("frames", "N", "clip length in frames (default 120)")
      .flag("reps", "N", "repetitions per cell (default 5)")
      .flag("seed", "S", "root seed (also the workload seed)")
      .flag("threads", "N", "worker threads (default: hardware)")
      .flag("quality", "on|off", "decode at receiver + eavesdropper")
      .flag("format", "table|jsonl|csv", "output format (default table)")
      .flag("out", "FILE", "write results to FILE instead of stdout")
      .flag("shared-seed", "",
            "reuse the root seed in every cell (figure-bench convention)")
      .flag("loss", "P", "Gilbert-Elliott mean loss probability")
      .flag("burst", "L", "Gilbert-Elliott mean burst length (packets)")
      .flag("outage", "START:DUR,...", "scheduled AP blackout windows (s)")
      .flag("stage-stats", "",
            "collect per-stage aggregates and emit them per cell");
  return fs;
}

FlagSet cell_flagset() {
  FlagSet fs{"thriftyvid cell",
             "Capacity sweep of a shared cell (docs/cell.md): N "
             "heterogeneous uploaders contend for one AP through the "
             "Bianchi fixed point; a deadline scheduler admits, degrades "
             "or defers flows; every admitted flow runs the full transfer "
             "pipeline.  With --validate the command switches to the "
             "fixed-point-vs-DES cross-check grid (see 'thriftyvid cell "
             "--validate --help')."};
  fs.flag("flows", "1,2,4,8", "population-size axis (uploaders per cell)")
      .flag("background", "N", "background cross-traffic stations")
      .flag("motions", "low,high", "per-flow motion levels (round-robin)")
      .flag("gops", "15,30", "per-flow GOP sizes (round-robin)")
      .flag("policies", "none,I,all", "per-flow policies (round-robin)")
      .flag("algs", "AES256,3DES", "per-flow ciphers (round-robin)")
      .flag("devices", "samsung,htc", "per-flow device profiles")
      .flag("deadlines", "4.0,8.0", "per-flow upload deadlines (s; 0=none)")
      .flag("frames", "N", "clip length in frames (default 90)")
      .flag("reps", "N", "repetitions per flow (default 5)")
      .flag("seed", "S", "root seed (also the workload seed)")
      .flag("threads", "N", "worker threads (default: hardware)")
      .flag("quality", "on|off", "decode at receiver + eavesdropper")
      .flag("cw-min", "W", "uploader CWmin (default 16)")
      .flag("stages", "M", "uploader backoff stages (default 6)")
      .flag("bg-cw-min", "W", "background CWmin (default 32)")
      .flag("bg-stages", "M", "background backoff stages (default 6)")
      .flag("channel-error", "P", "flat per-attempt channel error prob")
      .flag("fade-prob", "P", "stationary deep-fade probability per block")
      .flag("fade-burst", "L", "mean consecutive faded blocks (default 1)")
      .flag("fade-error", "P", "extra error probability inside a fade")
      .flag("no-degrade", "", "disable the policy degradation ladder")
      .flag("no-shed", "", "never defer flows (they just miss deadlines)")
      .flag("format", "table|jsonl|csv", "output format (default table)")
      .flag("out", "FILE", "write results to FILE instead of stdout")
      .flag("trace", "FILE",
            "write per-packet stage events as JSONL (serializes flows)")
      .flag("validate", "", "run the fixed-point-vs-DES cross-check grid");
  return fs;
}

FlagSet cell_validate_flagset() {
  FlagSet fs{"thriftyvid cell --validate",
             "Cross-check the heterogeneous Bianchi fixed point against "
             "the multi-station DCF simulator over an (n, CWmin, stages) "
             "grid with z*CI acceptance bands (docs/cell.md).  Exit 0 iff "
             "every check passes; output is bit-identical for any "
             "--threads."};
  fs.flag("validate", "", "selects this mode")
      .flag("ns", "2,3,5,8", "contender-count axis")
      .flag("cws", "16,32", "CWmin axis")
      .flag("stages", "3,6", "backoff-stage axis")
      .flag("background", "N", "background stations in every cell")
      .flag("bg-cw-min", "W", "background CWmin (default 32)")
      .flag("bg-stages", "M", "background backoff stages (default 6)")
      .flag("slots", "N", "measured slots per cell (default 300000)")
      .flag("warmup", "N", "discarded cold-start slots (default 20000)")
      .flag("z", "Z", "acceptance multiplier on the SE estimate")
      .flag("threads", "N", "worker threads (default: hardware)")
      .flag("format", "table|jsonl", "output format (default table)")
      .flag("out", "FILE", "write results to FILE instead of stdout")
      .flag("seed", "S", "root RNG seed (default 1)");
  return fs;
}

FlagSet advise_flagset() {
  FlagSet fs{"thriftyvid advise",
             "The Fig.-1 workflow: calibrate on a probe transfer, evaluate "
             "the policy ladder analytically, recommend the cheapest "
             "confidential policy."};
  fs.flag("motion", "low|medium|high", "synthetic clip motion level")
      .flag("gop", "N", "GOP size in frames (default 30)")
      .flag("frames", "N", "clip length in frames (default 120)")
      .flag("alg", "AES128|AES256|3DES", "cipher (default AES256)")
      .flag("device", "samsung|htc", "calibrated device profile")
      .flag("ceiling", "DB", "max acceptable eavesdropper PSNR (default 18)")
      .flag("objective", "delay|power", "cost to minimize (default delay)")
      .flag("seed", "S", "root RNG seed (default 1)");
  return fs;
}

FlagSet export_flagset() {
  FlagSet fs{"thriftyvid export",
             "Write original/receiver/eavesdropper .y4m files plus the "
             "eavesdropper's .pcap capture."};
  fs.flag("motion", "low|medium|high", "synthetic clip motion level")
      .flag("gop", "N", "GOP size in frames (default 30)")
      .flag("frames", "N", "clip length in frames (default 120)")
      .flag("policy", "none|I|P|all|I+<pct>P|<pct>I",
            "selective-encryption policy (default I)")
      .flag("alg", "AES128|AES256|3DES", "cipher (default AES256)")
      .flag("device", "samsung|htc", "calibrated device profile")
      .flag("outdir", "DIR", "output directory (default out)")
      .flag("seed", "S", "root RNG seed (default 1)");
  return fs;
}

/// --help handling shared by every subcommand: print the generated help to
/// stdout and signal the caller to exit 0.
bool wants_help(const Flags& args, const FlagSet& fs) {
  if (!args.has("help")) return false;
  std::fputs(fs.help_text().c_str(), stdout);
  return true;
}

int cmd_classify(const Flags& args) {
  const FlagSet fs = classify_flagset();
  if (wants_help(args, fs)) return 0;
  fs.check(args);
  if (args.positional().empty()) {
    std::fputs(fs.help_text().c_str(), stderr);
    return 2;
  }
  const auto clip = video::read_y4m_file(args.positional().front());
  const auto report = video::classify_motion(clip.frames);
  std::printf("%s: %zu frames %dx%d @%d/%d fps\n",
              args.positional().front().c_str(), clip.frames.size(),
              clip.frames.front().width(), clip.frames.front().height(),
              clip.fps_numerator, clip.fps_denominator);
  std::printf("motion score %.4f -> %s motion\n", report.score,
              video::to_string(report.level));
  std::printf("suggested decoder sensitivity fraction: %.2f\n",
              core::default_sensitivity(report.level));
  return 0;
}

// Parses "--outage=START:DURATION[,START:DURATION...]" (seconds).
std::vector<wifi::OutageWindow> parse_outages(const Flags& args) {
  std::vector<wifi::OutageWindow> outages;
  for (const std::string& item : args.get_list("outage")) {
    const auto colon = item.find(':');
    if (colon == std::string::npos) {
      throw util::FlagError{
          "invalid value for --outage: '" + item +
          "' (expected START:DURATION[,START:DURATION...] in seconds)"};
    }
    errno = 0;
    char* end = nullptr;
    const double start = std::strtod(item.c_str(), &end);
    const bool start_ok = end == item.c_str() + colon && errno == 0;
    errno = 0;
    const double duration = std::strtod(item.c_str() + colon + 1, &end);
    const bool duration_ok =
        end == item.c_str() + item.size() && colon + 1 < item.size() &&
        errno == 0;
    if (!start_ok || !duration_ok) {
      throw util::FlagError{"invalid value for --outage: '" + item +
                            "' (expected numeric START:DURATION)"};
    }
    outages.push_back({start, duration});
  }
  return outages;
}

// Builds a Gilbert-Elliott channel model when any of --loss/--burst/
// --outage is present; otherwise returns nullopt (legacy i.i.d. losses).
std::optional<core::ChannelModel> channel_from_flags(
    const Flags& args, const core::PipelineConfig& defaults) {
  const bool wants_channel =
      args.has("loss") || args.has("burst") || args.has("outage");
  if (!wants_channel) return std::nullopt;
  core::ChannelModel channel;
  channel.receiver.mean_loss_prob =
      args.get_double("loss", defaults.receiver_loss_prob);
  channel.receiver.mean_burst_length = args.get_double("burst", 1.0);
  channel.eavesdropper.mean_loss_prob = defaults.eavesdropper_loss_prob;
  channel.eavesdropper.mean_burst_length = 1.0;
  channel.outages = parse_outages(args);
  return channel;
}

core::Workload workload_from(const Flags& args) {
  return core::build_workload(
      video::motion_from_string(args.get("motion", "low")),
      args.get_int("gop", 30), args.get_int("frames", 120),
      args.get_uint64("seed", 1));
}

/// Opens --trace=FILE (when present) as a JSONL trace sink.  The stream and
/// the sink must outlive the run; the caller keeps both alive.
struct TraceOutput {
  std::ofstream file;
  std::optional<core::JsonlTraceSink> sink;

  [[nodiscard]] core::TraceSink* open(const Flags& args) {
    const std::string path = args.get("trace", "");
    if (path.empty()) return nullptr;
    file.open(path);
    if (!file) {
      throw util::FlagError{"cannot open --trace file: " + path};
    }
    sink.emplace(file);
    return &*sink;
  }
};

// Validation mode of `simulate` (docs/validation.md): run the discrete-
// event sender and eavesdropper simulators over a (lambda1, lambda2,
// policy, cipher) grid and compare every statistic against the analytic
// model.  Exit status 0 iff every check in every cell passed.
int cmd_simulate_validation(const Flags& args) {
  const FlagSet fs = simulate_validation_flagset();
  if (wants_help(args, fs)) return 0;
  fs.check(args);

  sim::ValidationSpec spec;
  if (args.has("lambda1s")) spec.lambda1s = args.get_double_list("lambda1s");
  if (args.has("lambda2s")) spec.lambda2s = args.get_double_list("lambda2s");
  if (args.has("algs")) {
    spec.algorithms.clear();
    for (const auto& a : args.get_list("algs")) {
      spec.algorithms.push_back(crypto::algorithm_from_string(a));
    }
  }
  if (args.has("policies")) {
    spec.policies.clear();
    for (const auto& p : args.get_list("policies")) {
      spec.policies.push_back(
          policy::policy_from_string(p, spec.algorithms.front()));
    }
  }
  if (args.has("device")) {
    spec.device = core::device_from_string(args.get("device", "samsung"));
  }
  spec.gop_size = args.get_int("gop", spec.gop_size);
  spec.n_gops = args.get_int("ngops", spec.n_gops);
  spec.eavesdropper_repetitions =
      args.get_int("eaves-reps", spec.eavesdropper_repetitions);
  spec.events = args.get_uint64("events", spec.events);
  spec.warmup = args.get_uint64("warmup", spec.warmup);
  spec.batches = args.get_uint64("batches", spec.batches);
  spec.z = args.get_double("z", spec.z);
  spec.seed = args.get_uint64("seed", spec.seed);

  TraceOutput trace;
  spec.trace = trace.open(args);

  const int threads = args.get_int(
      "threads", static_cast<int>(util::ThreadPool::default_thread_count()));
  if (threads < 1) {
    throw util::FlagError{"invalid value for --threads: must be >= 1"};
  }

  std::ofstream file;
  std::ostream* out = &std::cout;
  const std::string out_path = args.get("out", "");
  if (!out_path.empty()) {
    file.open(out_path);
    if (!file) {
      throw util::FlagError{"cannot open --out file: " + out_path};
    }
    out = &file;
  }

  const std::string format = args.get("format", "table");
  std::unique_ptr<sim::ValidationSink> sink;
  if (format == "table") {
    sink = std::make_unique<sim::ValidationTableSink>(*out);
  } else if (format == "jsonl") {
    sink = std::make_unique<sim::ValidationJsonlSink>(*out);
  } else {
    throw util::FlagError{"invalid value for --format: '" + format +
                          "' (expected table or jsonl)"};
  }

  std::optional<util::ThreadPool> pool;
  if (threads > 1) pool.emplace(static_cast<unsigned>(threads));
  sim::ValidationRunner runner{pool ? &*pool : nullptr};
  const sim::ValidationSummary summary = runner.run(spec, *sink);
  out->flush();
  trace.file.flush();
  std::fprintf(stderr,
               "# validation: %zu/%zu cells passed, %zu failed check(s), "
               "%u thread(s), %.2f s\n",
               summary.passed_cells, summary.cells, summary.failed_checks,
               summary.threads, summary.wall_s);
  return summary.all_passed() ? 0 : 1;
}

int cmd_simulate(const Flags& args) {
  // `--events` selects the model-validation grid (no pipeline, no clip):
  // the discrete-event simulators against the closed forms.
  if (args.has("events")) return cmd_simulate_validation(args);
  const FlagSet fs = simulate_flagset();
  if (wants_help(args, fs)) return 0;
  fs.check(args);
  const auto alg = crypto::algorithm_from_string(args.get("alg", "AES256"));
  const auto workload = workload_from(args);
  core::ExperimentSpec spec;
  spec.policy = policy::policy_from_string(args.get("policy", "I"), alg);
  spec.pipeline.device = core::device_from_string(args.get("device", "samsung"));
  spec.pipeline.transport =
      core::transport_from_string(args.get("transport", "udp"));
  spec.repetitions = args.get_int("reps", 5);
  spec.seed = args.get_uint64("seed", 1);
  spec.sensitivity_fraction = core::default_sensitivity(workload.motion);
  spec.pipeline.channel = channel_from_flags(args, spec.pipeline);
  // Fail fast on configuration mistakes; run_experiment itself downgrades
  // per-repetition failures to FailureEvents and would otherwise report a
  // bad --loss/--burst as "0 completed" with all-zero statistics.
  core::validate(spec.pipeline);

  TraceOutput trace;
  spec.trace = trace.open(args);
  spec.collect_stage_stats = args.get_bool("stage-stats", false);

  const auto r = core::run_experiment(spec, workload);
  trace.file.flush();
  std::printf("workload: %s motion, GOP %d, %zu frames, I=%.0fB P=%.0fB\n",
              video::to_string(workload.motion), workload.codec.gop_size,
              workload.clip.size(), workload.stream.mean_i_bytes(),
              workload.stream.mean_p_bytes());
  std::printf("policy %s on %s over %s: %.0f%% of packets encrypted\n",
              r.label.c_str(), spec.pipeline.device.name.c_str(),
              core::to_string(spec.pipeline.transport),
              100.0 * r.encryption.packet_fraction());
  std::printf("  delay        %7.2f ms ±%.2f   (model %.2f ms, rho %.2f)\n",
              r.delay_ms.mean(), r.delay_ms.ci95_halfwidth(),
              r.predicted_delay.mean_delay_ms,
              r.predicted_delay.utilization);
  std::printf("  receiver     %7.2f dB ±%.2f   MOS %.2f\n",
              r.receiver_psnr_db.mean(), r.receiver_psnr_db.ci95_halfwidth(),
              r.receiver_mos.mean());
  std::printf("  eavesdropper %7.2f dB ±%.2f   MOS %.2f   (model %.2f dB)\n",
              r.eavesdropper_psnr_db.mean(),
              r.eavesdropper_psnr_db.ci95_halfwidth(),
              r.eavesdropper_mos.mean(), r.predicted_eavesdropper.psnr_db);
  std::printf("  power        %7.2f W           (model %.2f W)\n",
              r.power_w.mean(), r.predicted_power.mean_power_w);
  if (r.stage_stats) {
    std::printf("stage breakdown (all repetitions):\n");
    for (std::size_t s = 0; s < core::kStageCount; ++s) {
      const auto& entry = r.stage_stats->stages[s];
      std::printf("  %-12s %10llu events   mean %9.4f ms   max %9.4f ms\n",
                  core::stage_key(static_cast<core::Stage>(s)),
                  static_cast<unsigned long long>(entry.events),
                  entry.time_s.mean() * 1e3, entry.time_s.max() * 1e3);
    }
  }
  if (spec.pipeline.channel) {
    const auto& ch = *spec.pipeline.channel;
    std::printf("channel: Gilbert-Elliott loss %.0f%% burst %.1f, "
                "%zu outage window(s)\n",
                100.0 * ch.receiver.mean_loss_prob,
                ch.receiver.mean_burst_length, ch.outages.size());
    std::printf("  repetitions  %d completed, %d failed\n",
                r.completed_repetitions, r.failed_repetitions);
    std::printf("  resilience   %llu retransmissions, %llu deadline drops, "
                "%llu outage drops\n",
                static_cast<unsigned long long>(r.total_retransmissions),
                static_cast<unsigned long long>(r.total_deadline_drops),
                static_cast<unsigned long long>(r.total_outage_drops));
    std::printf("  failures     %zu recorded", r.failures.size());
    std::size_t shown = 0;
    for (const auto& f : r.failures) {
      if (shown++ >= 5) {
        std::printf(" ...");
        break;
      }
      std::printf("%s rep %d %s@%.3fs", shown == 1 ? ":" : ",", f.repetition,
                  core::to_string(f.kind), f.time_s);
    }
    std::printf("\n");
  }
  return 0;
}

int cmd_sweep(const Flags& args) {
  const FlagSet fs = sweep_flagset();
  if (wants_help(args, fs)) return 0;
  fs.check(args);

  core::SweepSpec spec;
  spec.motions.clear();
  for (const auto& m : args.get_list("motions")) {
    spec.motions.push_back(video::motion_from_string(m));
  }
  if (spec.motions.empty()) spec.motions = {video::MotionLevel::kLow};

  if (args.has("gops")) spec.gop_sizes = args.get_int_list("gops");

  spec.algorithms.clear();
  for (const auto& a : args.get_list("algs")) {
    spec.algorithms.push_back(crypto::algorithm_from_string(a));
  }
  if (spec.algorithms.empty()) {
    spec.algorithms = {crypto::Algorithm::kAes256};
  }

  spec.policies.clear();
  for (const auto& p : args.get_list("policies")) {
    spec.policies.push_back(
        policy::policy_from_string(p, spec.algorithms.front()));
  }
  if (spec.policies.empty()) {
    spec.policies = policy::headline_policies(spec.algorithms.front());
  }

  spec.devices.clear();
  for (const auto& d : args.get_list("devices")) {
    spec.devices.push_back(core::device_from_string(d));
  }
  if (spec.devices.empty()) spec.devices = {core::samsung_galaxy_s2()};

  spec.transports.clear();
  for (const auto& t : args.get_list("transports")) {
    spec.transports.push_back(core::transport_from_string(t));
  }
  if (spec.transports.empty()) spec.transports = {core::Transport::kRtpUdp};

  core::PipelineConfig channel_defaults;
  spec.channels = {channel_from_flags(args, channel_defaults)};

  spec.frames = args.get_int("frames", 120);
  spec.repetitions = args.get_int("reps", 5);
  spec.seed = args.get_uint64("seed", 1);
  spec.evaluate_quality = args.get_bool("quality", true);
  spec.collect_stage_stats = args.get_bool("stage-stats", false);
  if (args.get_bool("shared-seed", false)) {
    spec.seed_mode = core::SweepSpec::SeedMode::kShared;
  }

  const int threads = args.get_int(
      "threads", static_cast<int>(util::ThreadPool::default_thread_count()));
  if (threads < 1) {
    throw util::FlagError{"invalid value for --threads: must be >= 1"};
  }

  std::ofstream file;
  std::ostream* out = &std::cout;
  const std::string out_path = args.get("out", "");
  if (!out_path.empty()) {
    file.open(out_path);
    if (!file) {
      throw util::FlagError{"cannot open --out file: " + out_path};
    }
    out = &file;
  }

  const std::string format = args.get("format", "table");
  std::unique_ptr<core::ResultSink> sink;
  if (format == "table") {
    sink = std::make_unique<core::TableSink>(*out);
  } else if (format == "jsonl") {
    sink = std::make_unique<core::JsonlSink>(*out);
  } else if (format == "csv") {
    sink = std::make_unique<core::CsvSink>(*out);
  } else {
    throw util::FlagError{"invalid value for --format: '" + format +
                          "' (expected table, jsonl or csv)"};
  }

  std::optional<util::ThreadPool> pool;
  if (threads > 1) pool.emplace(static_cast<unsigned>(threads));
  core::SweepRunner runner{pool ? &*pool : nullptr};
  const core::SweepSummary summary = runner.run(spec, *sink);
  out->flush();
  std::fprintf(stderr,
               "# sweep: %zu cells x %d reps, %zu workload(s), "
               "%u thread(s), %.2f s\n",
               summary.cells, spec.repetitions, summary.workloads,
               summary.threads, summary.wall_s);
  return 0;
}

// Validation mode of `cell` (docs/cell.md): solve the heterogeneous
// Bianchi fixed point and simulate the same population with the
// multi-station DCF simulator, comparing per-class statistics under z*CI
// acceptance bands.  Exit status 0 iff every check in every cell passed.
int cmd_cell_validate(const Flags& args) {
  const FlagSet fs = cell_validate_flagset();
  if (wants_help(args, fs)) return 0;
  fs.check(args);

  cell::CellValidationSpec spec;
  if (args.has("ns")) spec.contenders = args.get_int_list("ns");
  if (args.has("cws")) spec.cw_mins = args.get_int_list("cws");
  if (args.has("stages")) spec.stage_counts = args.get_int_list("stages");
  spec.background_stations =
      args.get_int("background", spec.background_stations);
  spec.background_cw_min = args.get_int("bg-cw-min", spec.background_cw_min);
  spec.background_stages = args.get_int("bg-stages", spec.background_stages);
  spec.slots = args.get_uint64("slots", spec.slots);
  spec.warmup = args.get_uint64("warmup", spec.warmup);
  spec.z = args.get_double("z", spec.z);
  spec.seed = args.get_uint64("seed", spec.seed);

  const int threads = args.get_int(
      "threads", static_cast<int>(util::ThreadPool::default_thread_count()));
  if (threads < 1) {
    throw util::FlagError{"invalid value for --threads: must be >= 1"};
  }

  std::ofstream file;
  std::ostream* out = &std::cout;
  const std::string out_path = args.get("out", "");
  if (!out_path.empty()) {
    file.open(out_path);
    if (!file) {
      throw util::FlagError{"cannot open --out file: " + out_path};
    }
    out = &file;
  }

  const std::string format = args.get("format", "table");
  std::unique_ptr<cell::CellValidationSink> sink;
  if (format == "table") {
    sink = std::make_unique<cell::CellValidationTableSink>(*out);
  } else if (format == "jsonl") {
    sink = std::make_unique<cell::CellValidationJsonlSink>(*out);
  } else {
    throw util::FlagError{"invalid value for --format: '" + format +
                          "' (expected table or jsonl)"};
  }

  std::optional<util::ThreadPool> pool;
  if (threads > 1) pool.emplace(static_cast<unsigned>(threads));
  cell::CellValidationRunner runner{pool ? &*pool : nullptr};
  const cell::CellValidationSummary summary = runner.run(spec, *sink);
  out->flush();
  std::fprintf(stderr,
               "# cell validation: %zu/%zu cells passed, %zu failed "
               "check(s), %u thread(s), %.2f s\n",
               summary.passed_cells, summary.cells, summary.failed_checks,
               summary.threads, summary.wall_s);
  return summary.all_passed() ? 0 : 1;
}

int cmd_cell(const Flags& args) {
  // `--validate` selects the fixed-point-vs-DES cross-check grid.
  if (args.has("validate")) return cmd_cell_validate(args);

  const FlagSet fs = cell_flagset();
  if (wants_help(args, fs)) return 0;
  fs.check(args);

  cell::CapacitySpec spec;
  if (args.has("flows")) spec.flow_counts = args.get_int_list("flows");

  cell::CellSpec& base = spec.base;
  base.background_stations = args.get_int("background", 0);

  base.motions.clear();
  for (const auto& m : args.get_list("motions")) {
    base.motions.push_back(video::motion_from_string(m));
  }
  if (base.motions.empty()) base.motions = {video::MotionLevel::kLow};

  if (args.has("gops")) base.gop_sizes = args.get_int_list("gops");

  base.algorithms.clear();
  for (const auto& a : args.get_list("algs")) {
    base.algorithms.push_back(crypto::algorithm_from_string(a));
  }
  if (base.algorithms.empty()) {
    base.algorithms = {crypto::Algorithm::kAes256};
  }

  base.policies.clear();
  for (const auto& p : args.get_list("policies")) {
    base.policies.push_back(
        policy::policy_from_string(p, base.algorithms.front()));
  }
  if (base.policies.empty()) {
    base.policies = {{policy::Mode::kIFrames, base.algorithms.front(), 0.0}};
  }

  base.devices.clear();
  for (const auto& d : args.get_list("devices")) {
    base.devices.push_back(core::device_from_string(d));
  }
  if (base.devices.empty()) base.devices = {core::samsung_galaxy_s2()};

  if (args.has("deadlines")) {
    base.deadlines_s = args.get_double_list("deadlines");
  }

  base.frames = args.get_int("frames", 90);
  base.repetitions = args.get_int("reps", 5);
  base.seed = args.get_uint64("seed", 1);
  base.evaluate_quality = args.get_bool("quality", true);
  base.cw_min = args.get_int("cw-min", base.cw_min);
  base.backoff_stages = args.get_int("stages", base.backoff_stages);
  base.background_cw_min = args.get_int("bg-cw-min", base.background_cw_min);
  base.background_stages = args.get_int("bg-stages", base.background_stages);
  base.channel_error_prob =
      args.get_double("channel-error", base.channel_error_prob);
  base.fade_prob = args.get_double("fade-prob", base.fade_prob);
  base.mean_fade_reps = args.get_double("fade-burst", base.mean_fade_reps);
  base.fade_error_prob = args.get_double("fade-error", base.fade_error_prob);
  base.scheduler.allow_degrade = !args.get_bool("no-degrade", false);
  base.scheduler.allow_shedding = !args.get_bool("no-shed", false);

  TraceOutput trace;
  base.trace = trace.open(args);

  const int threads = args.get_int(
      "threads", static_cast<int>(util::ThreadPool::default_thread_count()));
  if (threads < 1) {
    throw util::FlagError{"invalid value for --threads: must be >= 1"};
  }

  std::ofstream file;
  std::ostream* out = &std::cout;
  const std::string out_path = args.get("out", "");
  if (!out_path.empty()) {
    file.open(out_path);
    if (!file) {
      throw util::FlagError{"cannot open --out file: " + out_path};
    }
    out = &file;
  }

  const std::string format = args.get("format", "table");
  std::unique_ptr<cell::CellSink> sink;
  if (format == "table") {
    sink = std::make_unique<cell::CellTableSink>(*out);
  } else if (format == "jsonl") {
    sink = std::make_unique<cell::CellJsonlSink>(*out);
  } else if (format == "csv") {
    sink = std::make_unique<cell::CellCsvSink>(*out);
  } else {
    throw util::FlagError{"invalid value for --format: '" + format +
                          "' (expected table, jsonl or csv)"};
  }

  std::optional<util::ThreadPool> pool;
  if (threads > 1) pool.emplace(static_cast<unsigned>(threads));
  cell::CellRunner runner{pool ? &*pool : nullptr};
  const cell::CellSweepSummary summary = runner.run(spec, *sink);
  out->flush();
  trace.file.flush();
  std::fprintf(stderr,
               "# cell: %zu point(s) x %d reps, %zu workload(s), "
               "%u thread(s), %.2f s\n",
               summary.points, base.repetitions, summary.workloads,
               summary.threads, summary.wall_s);
  return 0;
}

int cmd_advise(const Flags& args) {
  const FlagSet fs = advise_flagset();
  if (wants_help(args, fs)) return 0;
  fs.check(args);
  const auto alg = crypto::algorithm_from_string(args.get("alg", "AES256"));
  const auto workload = workload_from(args);
  core::PipelineConfig pipeline;
  pipeline.device = core::device_from_string(args.get("device", "samsung"));
  const auto probe = core::simulate_transfer(pipeline, workload.packets,
                                             args.get_uint64("seed", 1));
  const auto traffic =
      core::calibrate_traffic(workload.packets, probe.timings, workload.fps);
  const auto service = core::calibrate_service(workload.packets,
                                               probe.timings, pipeline,
                                               traffic);
  core::DistortionInputs di;
  di.gop_size = workload.codec.gop_size;
  di.n_gops = static_cast<int>(workload.stream.frames.size()) /
              workload.codec.gop_size;
  di.sensitivity_fraction = core::default_sensitivity(workload.motion);
  di.base_mse = workload.base_mse;
  di.null_mse = workload.null_mse;
  di.inter = workload.inter;

  core::AdvisorRequest request;
  request.algorithm = alg;
  request.max_eavesdropper_psnr_db = args.get_double("ceiling", 18.0);
  request.objective = args.get("objective", "delay") == "power"
                          ? core::AdvisorRequest::Objective::kPower
                          : core::AdvisorRequest::Objective::kDelay;
  const auto result =
      core::advise(request, traffic, service, pipeline.device, di,
                   1.0 - pipeline.eavesdropper_loss_prob);

  std::printf("%-16s %-11s %-10s %-9s %s\n", "policy", "delay ms",
              "eaves dB", "power W", "confidential");
  for (const auto& e : result.evaluations) {
    std::printf("%-16s %-11.1f %-10.1f %-9.2f %s\n",
                e.policy.label().c_str(), e.delay.mean_delay_ms,
                e.eavesdropper.psnr_db, e.power.mean_power_w,
                e.confidential ? "yes" : "no");
  }
  if (result.recommendation) {
    std::printf("\nrecommendation: %s\n",
                result.recommendation->policy.label().c_str());
    return 0;
  }
  std::printf("\nno policy meets the %.1f dB ceiling\n",
              request.max_eavesdropper_psnr_db);
  return 1;
}

int cmd_export(const Flags& args) {
  const FlagSet fs = export_flagset();
  if (wants_help(args, fs)) return 0;
  fs.check(args);
  const auto alg = crypto::algorithm_from_string(args.get("alg", "AES256"));
  const auto workload = workload_from(args);
  const auto pol = policy::policy_from_string(args.get("policy", "I"), alg);
  const std::string outdir = args.get("outdir", "out");
  std::filesystem::create_directories(outdir);

  util::Arena arena;
  std::vector<net::VideoPacket> packets =
      net::clone_packets(workload.packets, arena);
  const auto selected = pol.select(packets);
  const auto cipher =
      crypto::make_cipher_from_seed(pol.algorithm, args.get_uint64("seed", 1));
  std::vector<std::uint8_t> iv(cipher->block_size(), 0x5c);
  net::encrypt_selected(packets, selected, *cipher, iv);

  core::PipelineConfig pipeline;
  pipeline.device = core::device_from_string(args.get("device", "samsung"));
  const auto transfer = core::simulate_transfer(pipeline, packets,
                                                args.get_uint64("seed", 1));
  const int frames = static_cast<int>(workload.stream.frames.size());
  const video::Decoder decoder{workload.codec};

  const auto rx = decoder.decode_stream(
      workload.stream.width, workload.stream.height,
      net::reassemble(packets, transfer.receiver_delivered, frames,
                      cipher.get(), iv));
  const auto ev = decoder.decode_stream(
      workload.stream.width, workload.stream.height,
      net::reassemble(packets, transfer.eavesdropper_captured, frames,
                      nullptr, iv));

  video::write_y4m_file(outdir + "/original.y4m", workload.clip);
  video::write_y4m_file(outdir + "/receiver.y4m", rx);
  video::write_y4m_file(outdir + "/eavesdropper.y4m", ev);
  std::vector<double> stamps;
  for (const auto& t : transfer.timings) stamps.push_back(t.completion);
  net::write_pcap_file(
      outdir + "/eavesdropper.pcap",
      net::capture_of(packets, transfer.eavesdropper_captured, stamps));
  std::printf("wrote %s/{original,receiver,eavesdropper}.y4m and "
              "eavesdropper.pcap  (policy %s, rx %.1f dB, eaves %.1f dB)\n",
              outdir.c_str(), pol.label().c_str(),
              video::sequence_psnr(workload.clip, rx),
              video::sequence_psnr(workload.clip, ev));
  return 0;
}

// --- analyze subcommand (docs/adversary.md) --------------------------------
// The ciphertext-only traffic-analysis adversary.  Without a positional
// argument it runs the leakage-vs-cost sweep (policy x shaping grid) on
// in-memory captures; with a pcap file it scores that one capture against
// ground truth rebuilt deterministically from the workload flags.

FlagSet analyze_flagset() {
  FlagSet fs{"thriftyvid analyze [capture.pcap]",
             "Ciphertext-only quality inference from eavesdropped traffic "
             "(docs/adversary.md): estimate I-frames, GOP, motion class, "
             "bitrate trajectory and an eavesdropper-PSNR proxy from packet "
             "lengths/timing/metadata only, scored as leakage against "
             "ground truth next to each countermeasure's delay/energy "
             "cost.  Without a pcap argument, runs the (policy x shaping) "
             "leakage sweep; per-cell seeds derive from --seed, so any "
             "--threads value produces bit-identical output.  With a pcap "
             "(from 'live loopback --pcap'), scores that capture; workload "
             "flags and --seed must match the run that produced it."};
  fs.flag("motion", "low|medium|high", "synthetic clip motion level")
      .flag("gop", "N", "GOP size in frames (default 16)")
      .flag("frames", "N", "clip length in frames (default 48)")
      .flag("policies", "none,I,P,all", "policy axis (sweep mode)")
      .flag("shapings", "none,pad256,...",
            "shaping axis (sweep mode; specs like pad256+hidemark+jit2ms; "
            "default: none plus each knob alone)")
      .flag("policy", "none|I|P|all|I+<pct>P|<pct>I",
            "capture's policy (pcap mode; default I)")
      .flag("shaping", "SPEC", "capture's shaping (pcap mode; default none)")
      .flag("alg", "AES128|AES256|3DES",
            "cipher (default AES128, matching 'live loopback')")
      .flag("device", "samsung|htc", "calibrated device profile")
      .flag("seed", "S", "root RNG seed (default 1)")
      .flag("window", "S", "bitrate-trajectory window (default 0.25)")
      .flag("threads", "N", "worker threads (default: hardware)")
      .flag("format", "table|jsonl|csv", "output format (default table)")
      .flag("out", "FILE", "write results to FILE instead of stdout")
      .flag("json", "FILE", "additionally tee JSONL results to FILE")
      .flag("csv", "FILE", "additionally tee CSV results to FILE");
  return fs;
}

int cmd_analyze(const Flags& args) {
  const FlagSet fs = analyze_flagset();
  if (wants_help(args, fs)) return 0;
  fs.check(args);

  analysis::LeakageSpec spec;
  spec.motion = video::motion_from_string(args.get("motion", "low"));
  spec.gop_size = args.get_int("gop", 16);
  spec.frames = args.get_int("frames", 48);
  const auto alg = crypto::algorithm_from_string(args.get("alg", "AES128"));
  spec.pipeline.algorithm = alg;
  spec.pipeline.device =
      core::device_from_string(args.get("device", "samsung"));
  spec.seed = args.get_uint64("seed", 1);
  spec.adversary.trajectory_window_s = args.get_double("window", 0.25);
  for (const auto& p : args.get_list("policies")) {
    spec.policies.push_back(policy::policy_from_string(p, alg));
  }
  for (const auto& s : args.get_list("shapings")) {
    spec.shapings.push_back(policy::shaping_from_string(s));
  }

  std::ofstream file;
  std::ostream* out = &std::cout;
  const std::string out_path = args.get("out", "");
  if (!out_path.empty()) {
    file.open(out_path);
    if (!file) {
      throw util::FlagError{"cannot open --out file: " + out_path};
    }
    out = &file;
  }

  const std::string format = args.get("format", "table");
  std::unique_ptr<analysis::LeakageSink> primary;
  if (format == "table") {
    primary = std::make_unique<analysis::LeakageTableSink>(*out);
  } else if (format == "jsonl") {
    primary = std::make_unique<analysis::LeakageJsonlSink>(*out);
  } else if (format == "csv") {
    primary = std::make_unique<analysis::LeakageCsvSink>(*out);
  } else {
    throw util::FlagError{"invalid value for --format: '" + format +
                          "' (expected table, jsonl or csv)"};
  }
  // --json/--csv tee full-precision copies next to the primary output.
  analysis::LeakageTeeSink tee;
  tee.add(primary.get());
  std::ofstream json_file, csv_file;
  std::optional<analysis::LeakageJsonlSink> json_sink;
  std::optional<analysis::LeakageCsvSink> csv_sink;
  const std::string json_path = args.get("json", "");
  if (!json_path.empty()) {
    json_file.open(json_path);
    if (!json_file) {
      throw util::FlagError{"cannot open --json file: " + json_path};
    }
    json_sink.emplace(json_file);
    tee.add(&*json_sink);
  }
  const std::string csv_path = args.get("csv", "");
  if (!csv_path.empty()) {
    csv_file.open(csv_path);
    if (!csv_file) {
      throw util::FlagError{"cannot open --csv file: " + csv_path};
    }
    csv_sink.emplace(csv_file);
    tee.add(&*csv_sink);
  }

  if (!args.positional().empty()) {
    // ---- pcap mode: one capture, one cell.  The cell seed is the root
    // seed itself so the deterministic re-run (ground truth + costs)
    // matches the 'live loopback' invocation that wrote the capture.
    const std::string pcap_path = args.positional().front();
    const net::PcapFile capture = net::read_pcap_file(pcap_path);
    const std::vector<net::WireRtpPacket> wire = net::extract_rtp(capture);

    spec.policies = {
        policy::policy_from_string(args.get("policy", "I"), alg)};
    spec.shapings = {
        policy::shaping_from_string(args.get("shaping", "none"))};
    spec.validate();
    analysis::LeakageCell cell;
    cell.policy = spec.policies.front();
    cell.shaping = spec.shapings.front();
    cell.seed = spec.seed;
    const core::Workload workload =
        core::build_workload(spec.motion, spec.gop_size, spec.frames,
                             spec.seed, spec.pipeline.fps);

    tee.begin(spec);
    const analysis::LeakageCellResult r =
        analysis::run_leakage_cell(spec, cell, workload, &wire);
    tee.cell(r);
    tee.end();
    out->flush();
    std::fprintf(stderr,
                 "# analyze: %s: %zu records, %zu RTP packets, "
                 "%zu frames observed\n",
                 pcap_path.c_str(), capture.records.size(), wire.size(),
                 r.inference.frames.size());
    return 0;
  }

  // ---- sweep mode: the full leakage-vs-cost grid.
  const int threads = args.get_int(
      "threads", static_cast<int>(util::ThreadPool::default_thread_count()));
  if (threads < 1) {
    throw util::FlagError{"invalid value for --threads: must be >= 1"};
  }
  std::optional<util::ThreadPool> pool;
  if (threads > 1) pool.emplace(static_cast<unsigned>(threads));
  analysis::LeakageRunner runner{pool ? &*pool : nullptr};
  const analysis::LeakageSummary summary = runner.run(spec, tee);
  out->flush();
  std::fprintf(stderr, "# analyze: %zu cells, %u thread(s), %.2f s\n",
               summary.cells, summary.threads, summary.wall_s);
  return 0;
}

// --- live subcommand (docs/live.md) ----------------------------------------
// Real UDP sockets on an epoll/poll event loop: `loopback` runs all three
// roles in-process on a virtual clock (deterministic, the pinned e2e);
// `send`, `recv` and `proxy` run one role each in real time for LAN
// experiments; `load` drives N supervised sessions against the multi-session
// server under a seeded chaos plan (docs/resilience.md).

FlagSet live_loopback_flagset() {
  FlagSet fs{"thriftyvid live loopback",
             "In-process live testbed: sender -> impairment proxy (+ "
             "eavesdropper tap) -> receiver over real loopback UDP, paced "
             "by the in-memory service law on a virtual clock.  Prints "
             "live vs. in-memory vs. model PSNRs."};
  fs.flag("motion", "low|medium|high", "synthetic clip motion level")
      .flag("gop", "N", "GOP size in frames (default 16)")
      .flag("frames", "N", "clip length in frames (default 48)")
      .flag("policy", "none|I|P|all|I+<pct>P|<pct>I",
            "selective-encryption policy (default I)")
      .flag("shaping", "SPEC",
            "traffic-shaping countermeasures, e.g. pad256+hidemark+jit2ms "
            "(default none; docs/adversary.md)")
      .flag("alg", "AES128|AES256|3DES", "cipher (default AES128)")
      .flag("device", "samsung|htc", "calibrated device profile")
      .flag("seed", "S", "root RNG seed (default 1)")
      .flag("stochastic", "",
            "impair with the proxy's own channel/faults instead of "
            "replaying the in-memory transfer's delivery masks")
      .flag("loss", "P", "receiver-path GE mean loss (stochastic mode)")
      .flag("burst", "L", "receiver-path GE mean burst length")
      .flag("outage", "START:DUR,...", "scheduled AP blackout windows (s)")
      .flag("fault-drop", "P", "proxy datagram drop probability")
      .flag("fault-corrupt", "P", "proxy payload bit-flip probability")
      .flag("fault-truncate", "P", "proxy truncation probability")
      .flag("fault-dup", "P", "proxy duplication probability")
      .flag("fault-reorder", "P", "proxy reordering probability")
      .flag("pcap", "FILE", "write the eavesdropper's capture as pcap")
      .flag("trace", "FILE", "write stage events of all roles as JSONL");
  return fs;
}

FlagSet live_send_flagset() {
  FlagSet fs{"thriftyvid live send",
             "Stream the workload as RTP/UDP to a receiver or proxy, paced "
             "by fresh service-law draws (T_e+T_b+T_t) in real time."};
  fs.flag("to", "HOST:PORT", "destination endpoint (required)")
      .flag("motion", "low|medium|high", "synthetic clip motion level")
      .flag("gop", "N", "GOP size in frames (default 16)")
      .flag("frames", "N", "clip length in frames (default 48)")
      .flag("policy", "none|I|P|all|I+<pct>P|<pct>I",
            "selective-encryption policy (default I)")
      .flag("alg", "AES128|AES256|3DES", "cipher (default AES128)")
      .flag("device", "samsung|htc", "calibrated device profile")
      .flag("seed", "S", "root RNG seed (default 1)")
      .flag("trace", "FILE", "write sender stage events as JSONL");
  return fs;
}

FlagSet live_recv_flagset() {
  FlagSet fs{"thriftyvid live recv",
             "Receive a live stream, decrypt marked payloads, and report "
             "PSNR against the (deterministically rebuilt) original clip.  "
             "Workload flags and --seed must match the sender's."};
  fs.flag("bind", "HOST:PORT", "listen endpoint (default 0.0.0.0:5004)")
      .flag("idle-timeout", "S", "end of stream after S quiet seconds "
                                 "(default 3)")
      .flag("motion", "low|medium|high", "synthetic clip motion level")
      .flag("gop", "N", "GOP size in frames (default 16)")
      .flag("frames", "N", "clip length in frames (default 48)")
      .flag("alg", "AES128|AES256|3DES", "cipher (default AES128)")
      .flag("seed", "S", "root RNG seed (default 1)")
      .flag("trace", "FILE", "write receive events as JSONL");
  return fs;
}

FlagSet live_proxy_flagset() {
  FlagSet fs{"thriftyvid live proxy",
             "UDP impairment proxy with an eavesdropper tap: forward "
             "datagrams through a Gilbert-Elliott channel, outages and a "
             "fault plan; optionally write the tap's capture as pcap."};
  fs.flag("bind", "HOST:PORT", "listen endpoint (default 0.0.0.0:5004)")
      .flag("to", "HOST:PORT", "forward endpoint (required)")
      .flag("idle-timeout", "S",
            "exit after S quiet seconds (default: run until killed)")
      .flag("loss", "P", "receiver-path GE mean loss probability")
      .flag("burst", "L", "receiver-path GE mean burst length")
      .flag("outage", "START:DUR,...", "scheduled AP blackout windows (s)")
      .flag("fault-drop", "P", "datagram drop probability")
      .flag("fault-corrupt", "P", "payload bit-flip probability")
      .flag("fault-truncate", "P", "truncation probability")
      .flag("fault-dup", "P", "duplication probability")
      .flag("fault-reorder", "P", "reordering probability")
      .flag("seed", "S", "impairment RNG seed (default 1)")
      .flag("pcap", "FILE", "write the tap's capture as pcap on exit")
      .flag("trace", "FILE", "write channel events as JSONL");
  return fs;
}

FlagSet live_load_flagset() {
  FlagSet fs{"thriftyvid live load",
             "Multi-session chaos/load harness: N supervised uploaders "
             "stream the same workload into one live server with admission "
             "control, all in-process on a virtual clock.  Deterministic in "
             "--seed; prints per-outcome session tallies."};
  fs.flag("sessions", "N", "concurrent uploader sessions (default 8)")
      .flag("max-sessions", "N",
            "server admission budget (default: --sessions, no contention)")
      .flag("motion", "low|medium|high", "synthetic clip motion level")
      .flag("gop", "N", "GOP size in frames (default 8)")
      .flag("frames", "N", "clip length in frames (default 16)")
      .flag("policy", "none|I|P|all|I+<pct>P|<pct>I",
            "selective-encryption policy (default I)")
      .flag("alg", "AES128|AES256|3DES", "cipher (default AES128)")
      .flag("device", "samsung|htc", "calibrated device profile")
      .flag("seed", "S", "root RNG seed (default 1)")
      .flag("ramp", "S", "spread session starts over S seconds (default 2)")
      .flag("chaos", "K=V,...",
            "chaos spec: eagain,short,spurious,drop,corrupt,truncate,dup,"
            "loss,burst,ctrl-drop,kill,outage=S:D;...,stall=S:D;...")
      .flag("queue-cap", "N", "per-session send-queue cap (default 64)")
      .flag("degrade-depth", "N",
            "queue depth that steps the policy down (default 32)")
      .flag("stall-timeout", "S", "client stall watchdog (default 5)")
      .flag("idle-timeout", "S", "server idle watchdog (default 5)")
      .flag("retry-max", "N", "per-packet send retries (default 8)")
      .flag("overload-high", "N", "overload latch entry backlog (default 4096)")
      .flag("overload-low", "N", "overload latch exit backlog (default 1024)")
      .flag("psnr", "", "decode each delivered session and report PSNR")
      .flag("per-session", "", "print the per-session outcome table")
      .flag("trace", "FILE", "write supervision events of all sessions");
  return fs;
}

/// Builds the proxy fault plan from the --fault-* flags; nullopt when
/// none is set.
std::optional<net::FaultPlan> faults_from(const Flags& args) {
  net::FaultPlan plan;
  plan.drop_prob = args.get_double("fault-drop", 0.0);
  plan.corrupt_payload_prob = args.get_double("fault-corrupt", 0.0);
  plan.truncate_prob = args.get_double("fault-truncate", 0.0);
  plan.duplicate_prob = args.get_double("fault-dup", 0.0);
  plan.reorder_prob = args.get_double("fault-reorder", 0.0);
  if (plan.drop_prob == 0.0 && plan.corrupt_payload_prob == 0.0 &&
      plan.truncate_prob == 0.0 && plan.duplicate_prob == 0.0 &&
      plan.reorder_prob == 0.0) {
    return std::nullopt;
  }
  plan.validate();
  return plan;
}

live::Endpoint endpoint_from(const Flags& args, const std::string& flag,
                             const std::string& fallback) {
  const std::string text = args.get(flag, fallback);
  if (text.empty()) {
    throw util::FlagError{"--" + flag + " is required"};
  }
  const auto endpoint = live::parse_endpoint(text);
  if (!endpoint) {
    throw util::FlagError{"invalid value for --" + flag + ": '" + text +
                          "' (expected HOST:PORT)"};
  }
  return *endpoint;
}

int cmd_live_loopback(const Flags& args) {
  const FlagSet fs = live_loopback_flagset();
  if (wants_help(args, fs)) return 0;
  fs.check(args);

  live::LoopbackConfig config;
  config.motion = video::motion_from_string(args.get("motion", "low"));
  config.gop_size = args.get_int("gop", 16);
  config.frames = args.get_int("frames", 48);
  const auto alg = crypto::algorithm_from_string(args.get("alg", "AES128"));
  config.policy = policy::policy_from_string(args.get("policy", "I"), alg);
  config.shaping = policy::shaping_from_string(args.get("shaping", "none"));
  config.pipeline.device =
      core::device_from_string(args.get("device", "samsung"));
  config.pipeline.channel = channel_from_flags(args, config.pipeline);
  config.seed = args.get_uint64("seed", 1);
  config.stochastic = args.has("stochastic");
  config.faults = faults_from(args);
  config.pcap_path = args.get("pcap", "");

  TraceOutput trace;
  config.trace = trace.open(args);

  const live::LoopbackReport r = live::run_loopback(config);
  std::printf("live loopback: %zu packets, policy %s, %zu/%zu encrypted, "
              "%s mode\n",
              r.packet_count, config.policy.label().c_str(),
              r.encryption.encrypted_packets, r.encryption.total_packets,
              config.stochastic ? "stochastic" : "replay");
  std::printf("%-24s %10s %10s %10s\n", "", "live", "in-memory", "model");
  std::printf("%-24s %10.2f %10.2f %10.2f\n", "receiver PSNR (dB)",
              r.live_receiver_psnr_db, r.memory_receiver_psnr_db,
              r.predicted_receiver_psnr_db);
  std::printf("%-24s %10.2f %10.2f %10.2f\n", "eavesdropper PSNR (dB)",
              r.live_eavesdropper_psnr_db, r.memory_eavesdropper_psnr_db,
              r.predicted_eavesdropper_psnr_db);
  std::printf("sender: %zu sent (%zu encrypted) over %.2f s\n",
              r.sender.packets_sent, r.sender.encrypted_packets,
              r.duration_s);
  std::printf("proxy: %zu heard, %zu forwarded, %zu dropped, %zu dup, "
              "%zu reordered\n",
              r.proxy.heard, r.proxy.forwarded, r.proxy.dropped,
              r.proxy.duplicated, r.proxy.reordered);
  std::printf("receiver: %zu accepted, %zu dup, %zu reordered, %zu invalid\n",
              r.receiver.accepted, r.receiver.duplicates,
              r.receiver.reordered, r.receiver.invalid);
  std::printf("eavesdropper: heard %zu, captured %zu\n", r.tap.heard,
              r.tap.captured);
  if (!config.pcap_path.empty()) {
    std::printf("pcap: %s (%zu clamped records)\n", config.pcap_path.c_str(),
                r.pcap_clamped);
  }
  return 0;
}

int cmd_live_send(const Flags& args) {
  const FlagSet fs = live_send_flagset();
  if (wants_help(args, fs)) return 0;
  fs.check(args);
  const live::Endpoint to = endpoint_from(args, "to", "");

  core::Workload workload = core::build_workload(
      video::motion_from_string(args.get("motion", "low")),
      args.get_int("gop", 16), args.get_int("frames", 48),
      args.get_uint64("seed", 1));
  const auto alg = crypto::algorithm_from_string(args.get("alg", "AES128"));
  const auto pol = policy::policy_from_string(args.get("policy", "I"), alg);
  const std::uint64_t seed = args.get_uint64("seed", 1);
  util::Arena arena;
  std::vector<net::VideoPacket> packets =
      net::clone_packets(workload.packets, arena);
  const auto selected = pol.select(packets);
  const auto cipher = crypto::make_cipher_from_seed(alg, seed);
  const auto flow_iv = live::flow_iv_for(*cipher, seed);
  net::encrypt_selected(packets, selected, *cipher, flow_iv);

  core::PipelineConfig pipeline;
  pipeline.device = core::device_from_string(args.get("device", "samsung"));
  pipeline.algorithm = alg;

  TraceOutput trace;
  core::TraceSink* sink = trace.open(args);

  live::EventLoop loop{live::ClockMode::kMonotonic};
  live::UdpSocket socket;
  socket.bind(live::Endpoint{0x7f000001, 0});
  live::SenderSession sender{
      loop, socket,
      live::SenderConfig{to, 0x74561D01, sink}, packets,
      live::schedule_from_service_model(pipeline, packets, seed, sink)};
  sender.start();
  loop.run();
  const live::SenderReport& r = sender.report();
  std::printf("sent %zu packets (%zu encrypted, %zu bytes) to %s over "
              "%.2f s, %zu kernel retries\n",
              r.packets_sent, r.encrypted_packets, r.datagram_bytes_sent,
              to.to_string().c_str(), r.last_send_s - r.first_send_s,
              r.kernel_retries);
  return 0;
}

int cmd_live_recv(const Flags& args) {
  const FlagSet fs = live_recv_flagset();
  if (wants_help(args, fs)) return 0;
  fs.check(args);

  core::Workload workload = core::build_workload(
      video::motion_from_string(args.get("motion", "low")),
      args.get_int("gop", 16), args.get_int("frames", 48),
      args.get_uint64("seed", 1));
  const auto alg = crypto::algorithm_from_string(args.get("alg", "AES128"));
  const std::uint64_t seed = args.get_uint64("seed", 1);
  const auto cipher = crypto::make_cipher_from_seed(alg, seed);
  const auto flow_iv = live::flow_iv_for(*cipher, seed);
  const int frame_count = static_cast<int>(workload.stream.frames.size());
  const live::StreamMap map = live::StreamMap::of(workload.packets,
                                                  frame_count);

  TraceOutput trace;
  live::ReceiverSessionConfig config;
  config.trace = trace.open(args);
  config.idle_timeout_s = args.get_double("idle-timeout", 3.0);

  live::EventLoop loop{live::ClockMode::kMonotonic};
  live::UdpSocket socket;
  socket.bind(endpoint_from(args, "bind", "0.0.0.0:5004"));
  live::ReceiverSession session{loop, socket, config};
  session.start();
  loop.run();

  const auto received = session.finish();
  const net::ReceiverStats& stats = session.stats();
  std::printf("received %zu packets (%zu datagrams, %zu dup, %zu reordered, "
              "%zu invalid)\n",
              received.size(), stats.datagrams, stats.duplicates,
              stats.reordered, stats.invalid);
  const video::Decoder decoder{workload.codec};
  const auto decoded = decoder.decode_stream(
      workload.stream.width, workload.stream.height,
      live::reassemble_wire(map, received, cipher.get(), flow_iv));
  std::printf("receiver PSNR: %.2f dB\n",
              video::sequence_psnr(workload.clip, decoded));
  return 0;
}

int cmd_live_proxy(const Flags& args) {
  const FlagSet fs = live_proxy_flagset();
  if (wants_help(args, fs)) return 0;
  fs.check(args);

  TraceOutput trace;
  live::ProxyConfig config;
  config.forward_to = endpoint_from(args, "to", "");
  config.faults = faults_from(args);
  if (args.has("loss") || args.has("burst")) {
    wifi::GilbertElliottParams channel;
    channel.mean_loss_prob = args.get_double("loss", 0.0);
    channel.mean_burst_length = args.get_double("burst", 1.0);
    config.receiver_channel = channel;
  }
  config.outages = parse_outages(args);
  config.seed = args.get_uint64("seed", 1);
  config.trace = trace.open(args);
  config.idle_timeout_s = args.get_double("idle-timeout", 0.0);

  live::EventLoop loop{live::ClockMode::kMonotonic};
  live::UdpSocket socket;
  socket.bind(endpoint_from(args, "bind", "0.0.0.0:5004"));
  live::EavesdropperTap tap{config.trace};
  live::ImpairmentProxy proxy{loop, socket, socket, config, &tap};
  proxy.start();
  std::printf("proxy: %s -> %s\n",
              socket.local_endpoint().to_string().c_str(),
              config.forward_to.to_string().c_str());
  loop.run();
  proxy.flush();
  const live::ProxyReport& r = proxy.report();
  std::printf("proxy: %zu heard, %zu forwarded, %zu dropped, %zu dup, "
              "%zu reordered; tap captured %zu\n",
              r.heard, r.forwarded, r.dropped, r.duplicated, r.reordered,
              tap.report().captured);
  const std::string pcap_path = args.get("pcap", "");
  if (!pcap_path.empty()) {
    const std::size_t clamped =
        net::write_pcap_datagrams_file(pcap_path, tap.captures());
    std::printf("pcap: %s (%zu clamped records)\n", pcap_path.c_str(),
                clamped);
  }
  return 0;
}

int cmd_live_load(const Flags& args) {
  const FlagSet fs = live_load_flagset();
  if (wants_help(args, fs)) return 0;
  fs.check(args);

  live::LoadConfig config;
  config.sessions = args.get_int("sessions", 8);
  config.max_sessions =
      static_cast<std::size_t>(args.get_int("max-sessions", 0));
  config.motion = video::motion_from_string(args.get("motion", "low"));
  config.gop_size = args.get_int("gop", 8);
  config.frames = args.get_int("frames", 16);
  const auto alg = crypto::algorithm_from_string(args.get("alg", "AES128"));
  config.policy = policy::policy_from_string(args.get("policy", "I"), alg);
  config.pipeline.device = core::device_from_string(args.get("device",
                                                             "samsung"));
  config.pipeline.algorithm = alg;
  config.seed = args.get_uint64("seed", 1);
  config.ramp_s = args.get_double("ramp", 2.0);
  if (args.has("chaos")) {
    config.chaos = live::chaos_plan_from_string(args.get("chaos", ""));
  }
  config.supervisor.queue_cap =
      static_cast<std::size_t>(args.get_int("queue-cap", 64));
  config.supervisor.degrade_depth =
      static_cast<std::size_t>(args.get_int("degrade-depth", 32));
  config.supervisor.stall_timeout_s = args.get_double("stall-timeout", 5.0);
  config.supervisor.max_send_retries = args.get_int("retry-max", 8);
  config.server_idle_timeout_s = args.get_double("idle-timeout", 5.0);
  config.overload_high =
      static_cast<std::size_t>(args.get_int("overload-high", 4096));
  config.overload_low =
      static_cast<std::size_t>(args.get_int("overload-low", 1024));
  config.evaluate_psnr = args.has("psnr");

  TraceOutput trace;
  config.trace = trace.open(args);

  const live::LoadReport r = live::run_load(config);

  std::printf("live load: %d sessions x %zu packets, policy %s, chaos %s\n",
              config.sessions, r.packet_count,
              config.policy.label().c_str(),
              args.has("chaos") ? args.get("chaos", "").c_str() : "off");
  std::printf("outcomes: %zu completed, %zu retried-recovered, %zu shed, "
              "%zu watchdog-killed\n",
              r.completed, r.recovered, r.shed, r.watchdog_killed);
  std::printf("clients: %zu send retries, %zu packets shed, %zu degraded, "
              "max queue depth %zu\n",
              r.total_send_retries, r.total_packets_shed,
              r.total_packets_degraded, r.max_client_queue_depth);
  std::printf("server: %zu hellos, %zu admitted, %zu rejected, %zu closed, "
              "%zu watchdog-killed, %zu ctrl drops\n",
              r.server.hellos, r.server.admitted, r.server.rejected,
              r.server.closed, r.server.watchdog_killed, r.server.ctrl_drops);
  std::printf("server backlog: max %zu, %zu overload entries, "
              "%zu stall-deferred (%zu dropped)\n",
              r.server.max_backlog, r.server.overload_entries,
              r.server.stall_deferred, r.server.stall_dropped);

  double delivered_sum = 0.0, psnr_sum = 0.0;
  std::size_t delivered_n = 0, psnr_n = 0;
  for (const auto& s : r.sessions) {
    if (s.server_outcome == live::SessionOutcome::kPending) continue;
    delivered_sum += s.delivered_fraction;
    ++delivered_n;
    if (config.evaluate_psnr && s.psnr_db > 0.0) {
      psnr_sum += s.psnr_db;
      ++psnr_n;
    }
  }
  if (delivered_n > 0) {
    std::printf("delivery: %.1f%% mean over %zu admitted sessions",
                100.0 * delivered_sum / static_cast<double>(delivered_n),
                delivered_n);
    if (psnr_n > 0) {
      std::printf(", mean PSNR %.2f dB",
                  psnr_sum / static_cast<double>(psnr_n));
    }
    std::printf("\n");
  }
  std::printf("duration: %.2f virtual seconds\n", r.duration_s);

  if (args.has("per-session")) {
    std::printf("\n%-5s %-10s %-18s %8s %8s %6s %6s %s\n", "sess",
                "ssrc", "outcome", "deliv%", "retries", "shed",
                "degr", config.evaluate_psnr ? "  psnr" : "");
    for (const auto& s : r.sessions) {
      std::printf("%-5d 0x%08x %-18s %7.1f%% %8zu %6zu %6zu",
                  s.index, s.ssrc, to_string(s.client.outcome),
                  100.0 * s.delivered_fraction, s.client.send_retries,
                  s.client.packets_shed, s.client.packets_degraded);
      if (config.evaluate_psnr && s.psnr_db > 0.0) {
        std::printf(" %.2f", s.psnr_db);
      }
      std::printf("\n");
    }
  }
  return 0;
}

int cmd_live(int argc, char** argv) {
  static const char* const kRoles =
      "usage: thriftyvid live <loopback|send|recv|proxy|load> [options]\n";
  if (argc < 3) {
    std::fputs(kRoles, stderr);
    return 2;
  }
  const std::string role = argv[2];
  const Flags args = Flags::parse(argc, argv, 3);
  if (role == "loopback") return cmd_live_loopback(args);
  if (role == "send") return cmd_live_send(args);
  if (role == "recv") return cmd_live_recv(args);
  if (role == "proxy") return cmd_live_proxy(args);
  if (role == "load") return cmd_live_load(args);
  std::fputs(kRoles, stderr);
  return 2;
}

/// Top-level usage: one line per subcommand, generated from the same
/// FlagSet registrations that produce the per-command --help.
void print_usage(std::FILE* to) {
  std::fprintf(to, "%s\nusage: thriftyvid <command> [options]\n\ncommands:\n",
               util::build_info_line().c_str());
  const FlagSet sets[] = {classify_flagset(),  simulate_flagset(),
                          simulate_validation_flagset(), sweep_flagset(),
                          cell_flagset(),      cell_validate_flagset(),
                          advise_flagset(),    export_flagset(),
                          analyze_flagset(),   live_loopback_flagset(),
                          live_send_flagset(), live_recv_flagset(),
                          live_proxy_flagset(), live_load_flagset()};
  for (const FlagSet& fs : sets) {
    // Strip the "thriftyvid " prefix for the listing.
    const std::string& cmd = fs.command();
    const std::string name =
        cmd.rfind("thriftyvid ", 0) == 0 ? cmd.substr(11) : cmd;
    std::fprintf(to, "  %-28s %s\n", name.c_str(), fs.summary().c_str());
  }
  std::fprintf(to,
               "\nrun 'thriftyvid <command> --help' for the command's "
               "option list\n");
}

int usage() {
  print_usage(stderr);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  if (cmd == "--help" || cmd == "help") {
    print_usage(stdout);
    return 0;
  }
  if (cmd == "--version" || cmd == "version") {
    std::printf("%s\n", util::build_info_line().c_str());
    return 0;
  }
  try {
    if (cmd == "live") return cmd_live(argc, argv);
    const Flags args = Flags::parse(argc, argv, 2);
    if (cmd == "classify") return cmd_classify(args);
    if (cmd == "simulate") return cmd_simulate(args);
    if (cmd == "sweep") return cmd_sweep(args);
    if (cmd == "cell") return cmd_cell(args);
    if (cmd == "advise") return cmd_advise(args);
    if (cmd == "export") return cmd_export(args);
    if (cmd == "analyze") return cmd_analyze(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
