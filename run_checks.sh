#!/usr/bin/env bash
# Full check pass: normal build + tests, then a sanitized build + tests,
# then a ThreadSanitizer build running the concurrency-sensitive suites.
#
# Usage: ./run_checks.sh [--sanitize-only | --tsan-only | --validation-only
#                         | --coverage | --tidy | --live-smoke | --chaos-smoke
#                         | --bench-smoke | --cell-smoke | --alloc-smoke
#                         | --analysis-smoke]
#
# Test tiers are selected by ctest labels (see docs/validation.md):
#   * default passes run everything except the `slow` label (the full-grid
#     convergence test, minutes of simulation under sanitizers);
#   * --validation-only runs the `validation` and `cell` labels — the
#     simulator, property-based, golden-file and fixed-point-vs-DES
#     cross-check suites, including the slow grid;
#   * --coverage builds with gcov instrumentation (build-cov/), runs the
#     non-slow tests and prints per-directory line coverage for src/;
#   * --tidy runs a pinned clang-tidy check set over src/ (skipped with a
#     notice when clang-tidy is not installed);
#   * --live-smoke runs the `live` label (real-socket loopback testbed)
#     plus the loopback e2e binary under a hard timeout, in both the
#     plain and the ASan+UBSan builds.  The timeout is the watchdog: the
#     virtual-clock loop must terminate by going idle, never by waiting
#     on the wall clock, so a hang is a bug, not slowness;
#   * --chaos-smoke runs the `chaos` label (supervised multi-session
#     server + seeded fault injection) plus a 200-session `live load`
#     chaos run, in both the plain and the ASan+UBSan builds, each under
#     a hard timeout.  Same watchdog rationale as --live-smoke.
#   * --bench-smoke builds Release, runs the hot-path micro-suite with
#     --quick --json under a hard timeout, and validates the emitted
#     JSON against the tv-bench-hotpath-v1 schema (keys present, numbers
#     finite; docs/benchmarks.md).  Values are machine-specific and are
#     deliberately not asserted.
#   * --cell-smoke runs the `cell` label (the multi-flow contention
#     engine, docs/cell.md) plus the `thriftyvid cell --validate`
#     cross-check grid and a 100-flow capacity cell, in both the plain
#     and the ASan+UBSan builds, each under a hard timeout.
#   * --analysis-smoke runs the `analysis` label (the traffic-analysis
#     adversary, docs/adversary.md) plus the full pcap round trip: a
#     deterministic `live loopback --pcap` capture piped through
#     `thriftyvid analyze`, with the emitted JSONL checked for schema
#     validity and the no-countermeasure I-frame recall floor (>= 0.9).
#     Both the plain and the ASan+UBSan builds, each under a hard
#     timeout.
#
# Every build configures with -DTHRIFTYVID_WERROR=ON: the tree is expected
# to be warning-clean under -Wall -Wextra, and promoting warnings to errors
# here keeps new ones from accumulating silently.
#
# The sanitized pass builds with -fsanitize=address,undefined and
# -fno-sanitize-recover=all, so any report aborts the run and fails the
# script.  The TSan pass builds with -DTHRIFTYVID_TSAN=ON and runs the
# thread pool / sweep / validation / flags suites (the code that actually
# shares state across threads) — running every test under TSan would be
# prohibitively slow.  All build trees are kept (build/, build-asan/,
# build-tsan/, build-cov/) so incremental re-runs are fast.
set -euo pipefail
cd "$(dirname "$0")"

jobs=$(nproc 2>/dev/null || echo 4)
mode="${1:-}"

case "${mode}" in
  ""|--sanitize-only|--tsan-only|--validation-only|--coverage|--tidy|--live-smoke|--chaos-smoke|--bench-smoke|--cell-smoke|--alloc-smoke|--analysis-smoke) ;;
  *)
    echo "usage: $0 [--sanitize-only | --tsan-only | --validation-only |" \
         "--coverage | --tidy | --live-smoke | --chaos-smoke |" \
         "--bench-smoke | --cell-smoke | --alloc-smoke |" \
         "--analysis-smoke]" >&2
    exit 2
    ;;
esac

if [[ "${mode}" == "--bench-smoke" ]]; then
  # The bench must complete quickly and emit schema-valid JSON; `timeout`
  # is the watchdog against a wedged measurement loop.
  echo "=== bench smoke: plain build ==="
  cmake -B build -S . -DCMAKE_BUILD_TYPE=Release -DTHRIFTYVID_WERROR=ON
  cmake --build build -j "${jobs}" --target bench_hotpath
  out=build/bench_smoke_hotpath.json
  rm -f "${out}"
  timeout 300 ./build/bench/bench_hotpath --quick --json="${out}"

  if ! command -v python3 >/dev/null 2>&1; then
    echo "=== bench smoke: python3 not installed; skipping JSON validation ==="
    exit 0
  fi
  python3 - "${out}" <<'PY'
import json, math, sys

with open(sys.argv[1]) as f:
    doc = json.load(f)

def fail(msg):
    sys.exit(f"bench smoke: schema violation: {msg}")

def finite(value, where):
    # null is the documented encoding for "not measurable on this host".
    if value is None:
        return
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        fail(f"{where} is {value!r}, expected a number or null")
    if not math.isfinite(value):
        fail(f"{where} is not finite: {value!r}")

if doc.get("schema") != "tv-bench-hotpath-v2":
    fail(f"schema is {doc.get('schema')!r}")
for key in ("quick", "cycle_clock_available", "aes_ni_available"):
    if not isinstance(doc.get(key), bool):
        fail(f"{key} missing or not a bool")
finite(doc.get("tsc_ghz"), "tsc_ghz")

for section in ("ciphers", "ofb"):
    points = doc.get(section)
    if not isinstance(points, list) or not points:
        fail(f"{section} missing or empty")
    for p in points:
        for key in ("algorithm", "backend", "path"):
            if not isinstance(p.get(key), str):
                fail(f"{section}[].{key} missing")
        for key in ("mb_s", "cycles_per_byte"):
            if key not in p:
                fail(f"{section}[].{key} missing")
            finite(p[key], f"{section}[].{key}")
        if p["mb_s"] is None:
            fail(f"{section} mb_s must be measured, got null")

for key in ("forward_blocks_per_s", "roundtrip_blocks_per_s"):
    finite(doc.get("dct", {}).get(key), f"dct.{key}")
    if doc.get("dct", {}).get(key) is None:
        fail(f"dct.{key} must be measured, got null")
transfer = doc.get("transfer", {})
if not isinstance(transfer.get("packets"), int) or transfer["packets"] <= 0:
    fail("transfer.packets missing or non-positive")
finite(transfer.get("packets_per_s"), "transfer.packets_per_s")
# v2: steady-state heap traffic of the zero-copy packet path.
finite(transfer.get("allocations_per_packet"),
       "transfer.allocations_per_packet")
if transfer.get("allocations_per_packet") is None:
    fail("transfer.allocations_per_packet must be measured, got null")
if transfer["allocations_per_packet"] > 0.5:
    fail("transfer.allocations_per_packet regressed: "
         f"{transfer['allocations_per_packet']} (expected ~0)")
if not isinstance(transfer.get("allocations_per_transfer"), int):
    fail("transfer.allocations_per_transfer missing or not an int")
arena = doc.get("arena", {})
for key in ("payload_bytes", "chunks", "allocations"):
    if not isinstance(arena.get(key), int) or arena[key] <= 0:
        fail(f"arena.{key} missing or non-positive")
for key in ("aes128_batch_over_block", "aes128_aesni_over_block"):
    if key not in doc.get("speedups", {}):
        fail(f"speedups.{key} missing")
    finite(doc["speedups"][key], f"speedups.{key}")

print(f"bench smoke: {sys.argv[1]} is schema-valid "
      f"({len(doc['ciphers'])} cipher points, {len(doc['ofb'])} ofb points)")
PY
  echo "=== bench smoke passed ==="
  exit 0
fi

if [[ "${mode}" == "--alloc-smoke" ]]; then
  # The allocation-regression gate: the counting-operator-new suite must
  # hold steady-state allocations/packet at ~0 through simulate_transfer,
  # and it must stay clean under ASan (the shim routes through malloc, so
  # the sanitizer still tracks every allocation).
  echo "=== alloc smoke: plain build ==="
  cmake -B build -S . -DCMAKE_BUILD_TYPE=Release -DTHRIFTYVID_WERROR=ON
  cmake --build build -j "${jobs}" --target tv_alloc_tests
  timeout 300 ./build/tests/tv_alloc_tests

  echo "=== alloc smoke: ASan + UBSan build ==="
  cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DTHRIFTYVID_SANITIZE=ON -DTHRIFTYVID_WERROR=ON
  cmake --build build-asan -j "${jobs}" --target tv_alloc_tests
  ASAN_OPTIONS=detect_leaks=1 UBSAN_OPTIONS=print_stacktrace=1 \
    timeout 600 ./build-asan/tests/tv_alloc_tests
  echo "=== alloc smoke passed ==="
  exit 0
fi

if [[ "${mode}" == "--cell-smoke" ]]; then
  # The CI gate for the cell engine: the fixed-point-vs-DES cross-check
  # grid must hold every acceptance band (the CLI exits non-zero
  # otherwise), and a 100-flow capacity cell with background traffic must
  # complete under a hard timeout — both deterministic in --seed, so
  # `timeout` is purely the hang watchdog.
  validate_args=(cell --validate)
  sweep_args=(cell --flows=100 --background=5 --frames=16 --gops=8
              --reps=1 --deadlines=20 --quality=off --format=csv --seed=1)

  echo "=== cell smoke: plain build ==="
  cmake -B build -S . -DCMAKE_BUILD_TYPE=Release -DTHRIFTYVID_WERROR=ON
  cmake --build build -j "${jobs}"
  ctest --test-dir build --output-on-failure -j "${jobs}" -L cell
  timeout 120 ./build/tools/thriftyvid "${validate_args[@]}"
  timeout 300 ./build/tools/thriftyvid "${sweep_args[@]}" >/dev/null

  echo "=== cell smoke: ASan + UBSan build ==="
  cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DTHRIFTYVID_SANITIZE=ON -DTHRIFTYVID_WERROR=ON
  cmake --build build-asan -j "${jobs}"
  ASAN_OPTIONS=detect_leaks=1 UBSAN_OPTIONS=print_stacktrace=1 \
    ctest --test-dir build-asan --output-on-failure -j "${jobs}" -L cell
  ASAN_OPTIONS=detect_leaks=1 UBSAN_OPTIONS=print_stacktrace=1 \
    timeout 300 ./build-asan/tools/thriftyvid "${validate_args[@]}"
  ASAN_OPTIONS=detect_leaks=1 UBSAN_OPTIONS=print_stacktrace=1 \
    timeout 600 ./build-asan/tools/thriftyvid "${sweep_args[@]}" >/dev/null

  echo "=== cell smoke passed ==="
  exit 0
fi

if [[ "${mode}" == "--analysis-smoke" ]]; then
  # The CI gate for the adversary: capture one deterministic loopback
  # transfer as pcap, run `thriftyvid analyze` over it, and hold the
  # emitted JSONL to the leakage-record schema and the headline result
  # (I-frame recall >= 0.9 with no countermeasures).  Both runs are
  # deterministic in --seed, so `timeout` is purely the hang watchdog.
  analysis_smoke() {
    local build="$1"
    local pcap="${build}/analysis_smoke.pcap"
    local jsonl="${build}/analysis_smoke.jsonl"
    rm -f "${pcap}" "${jsonl}"
    timeout 300 "./${build}/tools/thriftyvid" live loopback \
      --frames=48 --gop=16 --policy=I --seed=1 --pcap="${pcap}"
    timeout 300 "./${build}/tools/thriftyvid" analyze "${pcap}" \
      --policy=I --gop=16 --frames=48 --seed=1 \
      --format=jsonl --out="${jsonl}"
    if ! command -v python3 >/dev/null 2>&1; then
      echo "=== analysis smoke: python3 not installed; skipping JSONL check ==="
      return 0
    fi
    python3 - "${jsonl}" <<'PY'
import json, math, sys

def fail(msg):
    sys.exit(f"analysis smoke: {msg}")

with open(sys.argv[1]) as f:
    lines = [line for line in f if line.strip()]
if not lines:
    fail("empty JSONL output")

NUMERIC = (
    "bitrate_est_bps", "bitrate_true_bps", "q_est", "q_true",
    "psnr_est_db", "psnr_true_db", "i_precision", "i_recall", "i_f1",
    "bitrate_rel_error", "trajectory_mae_kbps", "encrypted_fraction_error",
    "psnr_error_db", "duration_s", "mean_delay_ms", "mean_power_w",
    "jitter_mean_delay_s",
)
for line in lines:
    rec = json.loads(line)
    for key in ("cell", "policy", "shaping", "seed", "packets", "captured",
                "frames_observed", "gop_est", "gop_true", "motion_est",
                "motion_true", "gop_error", "motion_match",
                "pad_overhead_bytes", *NUMERIC):
        if key not in rec:
            fail(f"record missing key {key!r}")
    for key in NUMERIC:
        value = rec[key]
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            fail(f"{key} is {value!r}, expected a number")
        if not math.isfinite(value):
            fail(f"{key} is not finite: {value!r}")
    # The headline adversary result: with no shaping, I-frames stand out.
    if rec["shaping"] == "none" and rec["i_recall"] < 0.9:
        fail(f"i_recall {rec['i_recall']} below the 0.9 floor")

print(f"analysis smoke: {sys.argv[1]} is schema-valid "
      f"({len(lines)} leakage record(s))")
PY
  }

  echo "=== analysis smoke: plain build ==="
  cmake -B build -S . -DCMAKE_BUILD_TYPE=Release -DTHRIFTYVID_WERROR=ON
  cmake --build build -j "${jobs}"
  ctest --test-dir build --output-on-failure -j "${jobs}" -L analysis
  analysis_smoke build

  echo "=== analysis smoke: ASan + UBSan build ==="
  cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DTHRIFTYVID_SANITIZE=ON -DTHRIFTYVID_WERROR=ON
  cmake --build build-asan -j "${jobs}"
  ASAN_OPTIONS=detect_leaks=1 UBSAN_OPTIONS=print_stacktrace=1 \
    ctest --test-dir build-asan --output-on-failure -j "${jobs}" -L analysis
  ASAN_OPTIONS=detect_leaks=1 UBSAN_OPTIONS=print_stacktrace=1 \
    analysis_smoke build-asan

  echo "=== analysis smoke passed ==="
  exit 0
fi

if [[ "${mode}" == "--chaos-smoke" ]]; then
  # A 200-session fleet under a composite chaos plan: EAGAIN storms,
  # short writes, bursty loss, dropped control replies, mid-stream kills
  # and a receiver stall.  The run is deterministic in --seed and must
  # terminate by the loop going idle; `timeout` is the hang watchdog.
  smoke_args=(live load --sessions=200 --ramp=20 --seed=1
              --idle-timeout=8 --stall-timeout=8
              --chaos=eagain=0.2,short=0.05,loss=0.05,burst=3,ctrl-drop=0.2,kill=0.1,stall=4:2)

  echo "=== chaos smoke: plain build ==="
  cmake -B build -S . -DCMAKE_BUILD_TYPE=Release -DTHRIFTYVID_WERROR=ON
  cmake --build build -j "${jobs}"
  ctest --test-dir build --output-on-failure -j "${jobs}" -L chaos
  timeout 120 ./build/tools/thriftyvid "${smoke_args[@]}"

  echo "=== chaos smoke: ASan + UBSan build ==="
  cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DTHRIFTYVID_SANITIZE=ON -DTHRIFTYVID_WERROR=ON
  cmake --build build-asan -j "${jobs}"
  ASAN_OPTIONS=detect_leaks=1 UBSAN_OPTIONS=print_stacktrace=1 \
    ctest --test-dir build-asan --output-on-failure -j "${jobs}" -L chaos
  ASAN_OPTIONS=detect_leaks=1 UBSAN_OPTIONS=print_stacktrace=1 \
    timeout 300 ./build-asan/tools/thriftyvid "${smoke_args[@]}"

  echo "=== chaos smoke passed ==="
  exit 0
fi

if [[ "${mode}" == "--live-smoke" ]]; then
  # The loopback run replays a deterministic transfer over real UDP
  # sockets; `timeout` is a hard watchdog against event-loop hangs.
  smoke_args=(live loopback --frames=32 --gop=16 --policy=I --seed=1)

  echo "=== live smoke: plain build ==="
  cmake -B build -S . -DCMAKE_BUILD_TYPE=Release -DTHRIFTYVID_WERROR=ON
  cmake --build build -j "${jobs}"
  ctest --test-dir build --output-on-failure -j "${jobs}" -L live
  timeout 120 ./build/tools/thriftyvid "${smoke_args[@]}"

  echo "=== live smoke: ASan + UBSan build ==="
  cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DTHRIFTYVID_SANITIZE=ON -DTHRIFTYVID_WERROR=ON
  cmake --build build-asan -j "${jobs}"
  ASAN_OPTIONS=detect_leaks=1 UBSAN_OPTIONS=print_stacktrace=1 \
    ctest --test-dir build-asan --output-on-failure -j "${jobs}" -L live
  ASAN_OPTIONS=detect_leaks=1 UBSAN_OPTIONS=print_stacktrace=1 \
    timeout 300 ./build-asan/tools/thriftyvid "${smoke_args[@]}"

  echo "=== live smoke passed ==="
  exit 0
fi

if [[ "${mode}" == "--tidy" ]]; then
  # Static-analysis pass: a pinned check set so results stay stable across
  # clang-tidy releases.  bugprone-easily-swappable-parameters and
  # -narrowing-conversions are excluded as noise for this codebase (math
  # code passes many adjacent doubles and converts sizes deliberately).
  if ! command -v clang-tidy >/dev/null 2>&1; then
    echo "=== tidy: clang-tidy not installed; skipping ==="
    exit 0
  fi
  echo "=== clang-tidy (pinned checks) over src/ ==="
  cmake -B build -S . -DCMAKE_BUILD_TYPE=Release -DTHRIFTYVID_WERROR=ON \
        -DCMAKE_EXPORT_COMPILE_COMMANDS=ON
  checks='-*,bugprone-*,-bugprone-easily-swappable-parameters'
  checks+=',-bugprone-narrowing-conversions,performance-*'
  checks+=',readability-container-size-empty,readability-container-contains'
  checks+=',readability-container-data-pointer'
  find src -name '*.cpp' -print0 |
    xargs -0 clang-tidy -p build --quiet --checks="${checks}" \
          --warnings-as-errors='*'
  echo "=== tidy pass done ==="
  exit 0
fi

if [[ "${mode}" == "--validation-only" ]]; then
  echo "=== validation tier (plain build) ==="
  cmake -B build -S . -DCMAKE_BUILD_TYPE=Release -DTHRIFTYVID_WERROR=ON
  cmake --build build -j "${jobs}"
  ctest --test-dir build --output-on-failure -j "${jobs}" \
        -L 'validation|slow|cell'
  echo "=== validation tier passed ==="
  exit 0
fi

if [[ "${mode}" == "--coverage" ]]; then
  echo "=== coverage build + tests (gcov) ==="
  cmake -B build-cov -S . -DCMAKE_BUILD_TYPE=Debug -DTHRIFTYVID_COVERAGE=ON \
        -DTHRIFTYVID_WERROR=ON
  cmake --build build-cov -j "${jobs}"
  ctest --test-dir build-cov --output-on-failure -j "${jobs}" -LE slow
  echo "=== per-directory line coverage (src/) ==="
  covdir=build-cov/coverage
  rm -rf "${covdir}"
  mkdir -p "${covdir}"
  # -p keeps the full path in each .gcov filename so sources with the same
  # basename in different directories cannot clobber each other.
  (cd "${covdir}" &&
     find ../src -name '*.gcda' -print0 |
       xargs -0 gcov -p >/dev/null 2>&1) || true
  report=$(awk -v root="$(pwd)/src/" '
    BEGIN { FS = ":" }
    {
      count = $1; sub(/^[ \t]+/, "", count)
      lineno = $2 + 0
    }
    lineno == 0 && $3 == "Source" {
      keep = index($4, root) == 1
      if (keep) {
        rel = substr($4, length(root) + 1)
        dir = rel
        if (sub(/\/[^\/]*$/, "", dir) == 0) dir = "."
        dir = "src/" dir
      }
      next
    }
    !keep || lineno == 0 || count == "-" { next }
    {
      total[dir]++
      if (count != "#####" && count != "=====") hit[dir]++
    }
    END {
      for (d in total) {
        printf "%-22s %6.1f%%  (%d/%d lines)\n",
               d, 100.0 * hit[d] / total[d], hit[d], total[d]
        grand_total += total[d]
        grand_hit += hit[d]
      }
      if (grand_total > 0) {
        printf "TOTAL %6.1f%% (%d/%d lines)\n",
               100.0 * grand_hit / grand_total, grand_hit, grand_total
      }
    }' "${covdir}"/*.gcov)
  echo "${report}" | grep -v '^TOTAL' | sort
  echo "${report}" | grep '^TOTAL'
  echo "=== coverage pass done ==="
  exit 0
fi

if [[ "${mode}" != "--sanitize-only" && "${mode}" != "--tsan-only" ]]; then
  echo "=== plain build + tests ==="
  cmake -B build -S . -DCMAKE_BUILD_TYPE=Release -DTHRIFTYVID_WERROR=ON
  cmake --build build -j "${jobs}"
  ctest --test-dir build --output-on-failure -j "${jobs}" -LE slow
fi

if [[ "${mode}" != "--tsan-only" ]]; then
  echo "=== sanitized build + tests (ASan + UBSan) ==="
  cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DTHRIFTYVID_SANITIZE=ON -DTHRIFTYVID_WERROR=ON
  cmake --build build-asan -j "${jobs}"
  ASAN_OPTIONS=detect_leaks=1 UBSAN_OPTIONS=print_stacktrace=1 \
    ctest --test-dir build-asan --output-on-failure -j "${jobs}" -LE slow
fi

if [[ "${mode}" != "--sanitize-only" ]]; then
  echo "=== ThreadSanitizer build + concurrency tests ==="
  cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DTHRIFTYVID_TSAN=ON -DTHRIFTYVID_WERROR=ON
  cmake --build build-tsan -j "${jobs}"
  TSAN_OPTIONS=halt_on_error=1 \
    ctest --test-dir build-tsan --output-on-failure -j "${jobs}" \
          -R 'ThreadPool|Sweep|WorkloadCache|Flags|Validation'
fi

echo "=== all checks passed ==="
