#!/usr/bin/env bash
# Full check pass: normal build + tests, then a sanitized build + tests.
#
# Usage: ./run_checks.sh [--sanitize-only]
#
# The sanitized pass builds with -fsanitize=address,undefined and
# -fno-sanitize-recover=all, so any report aborts the run and fails the
# script.  Both build trees are kept (build/ and build-asan/) so
# incremental re-runs are fast.
set -euo pipefail
cd "$(dirname "$0")"

jobs=$(nproc 2>/dev/null || echo 4)

if [[ "${1:-}" != "--sanitize-only" ]]; then
  echo "=== plain build + tests ==="
  cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
  cmake --build build -j "${jobs}"
  ctest --test-dir build --output-on-failure -j "${jobs}"
fi

echo "=== sanitized build + tests (ASan + UBSan) ==="
cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DTHRIFTYVID_SANITIZE=ON
cmake --build build-asan -j "${jobs}"
ASAN_OPTIONS=detect_leaks=1 UBSAN_OPTIONS=print_stacktrace=1 \
  ctest --test-dir build-asan --output-on-failure -j "${jobs}"

echo "=== all checks passed ==="
