#!/usr/bin/env bash
# Full check pass: normal build + tests, then a sanitized build + tests,
# then a ThreadSanitizer build running the concurrency-sensitive suites.
#
# Usage: ./run_checks.sh [--sanitize-only | --tsan-only]
#
# The sanitized pass builds with -fsanitize=address,undefined and
# -fno-sanitize-recover=all, so any report aborts the run and fails the
# script.  The TSan pass builds with -DTHRIFTYVID_TSAN=ON and runs the
# thread pool / sweep / flags suites (the code that actually shares state
# across threads) — running every test under TSan would be prohibitively
# slow.  All build trees are kept (build/, build-asan/, build-tsan/) so
# incremental re-runs are fast.
set -euo pipefail
cd "$(dirname "$0")"

jobs=$(nproc 2>/dev/null || echo 4)
mode="${1:-}"

if [[ "${mode}" != "--sanitize-only" && "${mode}" != "--tsan-only" ]]; then
  echo "=== plain build + tests ==="
  cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
  cmake --build build -j "${jobs}"
  ctest --test-dir build --output-on-failure -j "${jobs}"
fi

if [[ "${mode}" != "--tsan-only" ]]; then
  echo "=== sanitized build + tests (ASan + UBSan) ==="
  cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DTHRIFTYVID_SANITIZE=ON
  cmake --build build-asan -j "${jobs}"
  ASAN_OPTIONS=detect_leaks=1 UBSAN_OPTIONS=print_stacktrace=1 \
    ctest --test-dir build-asan --output-on-failure -j "${jobs}"
fi

if [[ "${mode}" != "--sanitize-only" ]]; then
  echo "=== ThreadSanitizer build + concurrency tests ==="
  cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DTHRIFTYVID_TSAN=ON
  cmake --build build-tsan -j "${jobs}"
  TSAN_OPTIONS=halt_on_error=1 \
    ctest --test-dir build-tsan --output-on-failure -j "${jobs}" \
          -R 'ThreadPool|Sweep|WorkloadCache|Flags'
fi

echo "=== all checks passed ==="
